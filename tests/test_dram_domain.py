"""DRAM domain: bandwidth throttling, power floor, busy-coupled power."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.component import CappingMechanism
from repro.hardware.dram import DramDomain, DramOperatingPoint


@pytest.fixture
def dram():
    return DramDomain(
        background_w=26.0,
        max_access_w=90.0,
        peak_bw_gbps=80.0,
        min_level=0.45,
        level_steps=32,
    )


class TestConstruction:
    def test_rejects_zero_min_level(self):
        with pytest.raises(ConfigurationError):
            DramDomain(background_w=10.0, max_access_w=50.0, peak_bw_gbps=60.0, min_level=0.0)

    def test_rejects_bad_level_steps(self):
        with pytest.raises(ConfigurationError):
            DramDomain(
                background_w=10.0, max_access_w=50.0, peak_bw_gbps=60.0, level_steps=0
            )

    def test_demand_bounds(self, dram):
        assert dram.max_power_w == pytest.approx(116.0)
        assert dram.floor_power_w == pytest.approx(26.0 + 0.45 * 90.0)


class TestEnforcement:
    def test_generous_cap_unthrottled(self, dram):
        op = dram.operating_point(200.0)
        assert op.level == 1.0
        assert op.mechanism is CappingMechanism.NONE

    def test_cap_at_max_power_unthrottled(self, dram):
        op = dram.operating_point(116.0)
        assert op.level == 1.0

    def test_cap_in_range_throttles(self, dram):
        op = dram.operating_point(80.0)
        assert op.mechanism is CappingMechanism.BANDWIDTH_THROTTLE
        assert dram.min_level <= op.level < 1.0
        # Worst-case (busy bus) power at the chosen level fits the cap.
        assert dram.demand_w(op, 1.0) <= 80.0 + 1e-9

    def test_cap_below_floor_is_disregarded(self, dram):
        op = dram.operating_point(30.0)
        assert op.mechanism is CappingMechanism.FLOOR
        assert op.level == pytest.approx(0.45)
        assert dram.demand_w(op, 1.0) > 30.0

    def test_level_monotone_in_cap(self, dram):
        levels = [dram.operating_point(c).level for c in (70, 80, 90, 100, 110)]
        assert levels == sorted(levels)

    def test_snap_is_downward(self, dram):
        for cap in (71.3, 84.7, 99.9):
            op = dram.operating_point(cap)
            assert dram.background_w + op.level * dram.max_access_w <= cap + 1e-9


class TestPowerAndBandwidth:
    def test_idle_bus_draws_background(self, dram):
        op = DramOperatingPoint(1.0, CappingMechanism.NONE)
        assert dram.demand_w(op, 0.0) == pytest.approx(26.0)

    def test_busy_scales_linearly(self, dram):
        op = DramOperatingPoint(0.8, CappingMechanism.BANDWIDTH_THROTTLE)
        p_half = dram.demand_w(op, 0.5)
        p_full = dram.demand_w(op, 1.0)
        assert (p_half - 26.0) == pytest.approx((p_full - 26.0) / 2)

    def test_bandwidth_ceiling_scales_with_level(self, dram):
        hi = dram.bandwidth_ceiling_gbps(DramOperatingPoint(1.0, CappingMechanism.NONE), 0.85)
        lo = dram.bandwidth_ceiling_gbps(DramOperatingPoint(0.5, CappingMechanism.NONE), 0.85)
        assert lo == pytest.approx(hi / 2)

    def test_bandwidth_ceiling_pattern_efficiency(self, dram):
        op = DramOperatingPoint(1.0, CappingMechanism.NONE)
        stream = dram.bandwidth_ceiling_gbps(op, 0.85)
        random = dram.bandwidth_ceiling_gbps(op, 0.08)
        assert stream / random == pytest.approx(0.85 / 0.08)

    def test_snap_level_grid(self, dram):
        lvl = dram.snap_level(0.731)
        span = 1.0 - dram.min_level
        step = span / (dram.level_steps - 1)
        k = (lvl - dram.min_level) / step
        assert abs(k - round(k)) < 1e-9
        assert lvl <= 0.731
