"""COORD+ (case-C candidate probing)."""

import pytest

from repro.core.coord import CoordStatus, coord_cpu
from repro.core.coord_probing import coord_cpu_probing
from repro.core.profiler import profile_cpu_workload
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import ConfigurationError
from repro.perfmodel.executor import execute_on_host
from repro.workloads import cpu_workload, list_cpu_workloads


def perf_of(ivb, wl, alloc):
    r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, alloc.proc_w, alloc.mem_w)
    return wl.performance(r)


def score_of(ivb, wl, alloc):
    """(respects_bound, perf): a violating allocation never outranks a
    legitimate one, however fast it runs."""
    r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, alloc.proc_w, alloc.mem_w)
    return (r.respects_bound, wl.performance(r))


class TestCoordProbing:
    def test_cases_a_and_d_unchanged(self, ivb, sra):
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        plus = coord_cpu_probing(ivb.cpu, ivb.dram, sra, critical, 260.0)
        base = coord_cpu(critical, 260.0)
        assert plus.allocation == base.allocation
        assert plus.status is CoordStatus.SURPLUS
        assert not coord_cpu_probing(ivb.cpu, ivb.dram, sra, critical, 80.0).accepted

    def test_case_b_unchanged(self, ivb, sra):
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        budget = critical.cpu_l2 + critical.mem_l1 + 5.0  # inside case B
        plus = coord_cpu_probing(ivb.cpu, ivb.dram, sra, critical, budget)
        assert plus.allocation == coord_cpu(critical, budget).allocation

    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_never_worse_than_coord(self, ivb, name):
        wl = cpu_workload(name)
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, wl)
        for budget in (144.0, 160.0, 176.0):
            base = coord_cpu(critical, budget)
            if not base.accepted:
                continue
            plus = coord_cpu_probing(ivb.cpu, ivb.dram, wl, critical, budget)
            # COORD+ never ranks below plain COORD under the legitimate
            # ordering (bound-respecting first, then performance); it may
            # trade raw speed for a bound COORD silently violated.
            assert score_of(ivb, wl, plus.allocation) >= score_of(
                ivb, wl, base.allocation
            ), (name, budget)

    def test_budget_respected(self, ivb, stream):
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, stream)
        for budget in (144.0, 176.0):
            plus = coord_cpu_probing(ivb.cpu, ivb.dram, stream, critical, budget)
            assert plus.allocation.total_w <= budget + 1e-6

    def test_closes_most_of_the_small_budget_gap(self, ivb):
        # Averaged over the suite at tight budgets, probing recovers at
        # least a third of COORD's gap to the oracle.
        base_gaps, plus_gaps = [], []
        for name in list_cpu_workloads():
            wl = cpu_workload(name)
            critical = profile_cpu_workload(ivb.cpu, ivb.dram, wl)
            for budget in (144.0, 176.0):
                base = coord_cpu(critical, budget)
                if not base.accepted:
                    continue
                best = sweep_cpu_allocations(
                    ivb.cpu, ivb.dram, wl, budget, step_w=4.0
                ).perf_max
                plus = coord_cpu_probing(ivb.cpu, ivb.dram, wl, critical, budget)
                base_gaps.append(1 - perf_of(ivb, wl, base.allocation) / best)
                plus_gaps.append(1 - perf_of(ivb, wl, plus.allocation) / best)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(plus_gaps) < 0.67 * mean(base_gaps)

    def test_bad_lean_shift(self, ivb, stream):
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, stream)
        with pytest.raises(ConfigurationError):
            coord_cpu_probing(
                ivb.cpu, ivb.dram, stream, critical, 150.0, lean_shift=0.0
            )
