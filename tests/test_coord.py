"""COORD for CPU computing (Algorithm 1)."""

import pytest

from repro.core.coord import CoordStatus, coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.core.profiler import profile_cpu_workload
from repro.errors import BudgetTooSmallError
from repro.perfmodel.executor import execute_on_host
from repro.workloads import cpu_workload, list_cpu_workloads


@pytest.fixture
def critical():
    return CpuCriticalPowers(
        cpu_l1=112.0, cpu_l2=66.0, cpu_l3=50.0, cpu_l4=48.0,
        mem_l1=116.0, mem_l2=30.0, mem_l3=66.0,
    )


class TestCaseA:
    """P_b >= L1c + L1m: adequate power for both."""

    def test_full_demand_allocated(self, critical):
        d = coord_cpu(critical, 260.0)
        assert d.status is CoordStatus.SURPLUS
        assert d.allocation.proc_w == pytest.approx(112.0)
        assert d.allocation.mem_w == pytest.approx(116.0)

    def test_surplus_reported(self, critical):
        d = coord_cpu(critical, 260.0)
        assert d.surplus_w == pytest.approx(260.0 - 228.0)

    def test_boundary_exact(self, critical):
        d = coord_cpu(critical, 228.0)
        assert d.status is CoordStatus.SURPLUS
        assert d.surplus_w == pytest.approx(0.0)


class TestCaseB:
    """L2c + L1m <= P_b < L1c + L1m: memory first."""

    def test_memory_gets_full_demand(self, critical):
        d = coord_cpu(critical, 200.0)
        assert d.status is CoordStatus.SUCCESS
        assert d.allocation.mem_w == pytest.approx(116.0)
        assert d.allocation.proc_w == pytest.approx(84.0)

    def test_budget_fully_distributed(self, critical):
        d = coord_cpu(critical, 190.0)
        assert d.allocation.total_w == pytest.approx(190.0)


class TestCaseC:
    """L2c + L2m <= P_b < L2c + L1m: proportional split above the floors."""

    def test_proportional_split(self, critical):
        budget = 150.0
        d = coord_cpu(critical, budget)
        assert d.status is CoordStatus.SUCCESS
        d_cpu = 112.0 - 66.0
        d_mem = 116.0 - 30.0
        pct = d_cpu / (d_cpu + d_mem)
        headroom = budget - 96.0
        assert d.allocation.proc_w == pytest.approx(66.0 + pct * headroom)
        assert d.allocation.total_w == pytest.approx(budget)

    def test_both_above_l2_floors(self, critical):
        d = coord_cpu(critical, 100.0)
        assert d.allocation.proc_w >= 66.0 - 1e-9
        assert d.allocation.mem_w >= 30.0 - 1e-9

    def test_degenerate_zero_ranges(self):
        # With L1 == L2 on both domains, case C collapses: any budget at
        # the threshold is already case A (full demand) with surplus.
        c = CpuCriticalPowers(
            cpu_l1=66.0, cpu_l2=66.0, cpu_l3=50.0, cpu_l4=48.0,
            mem_l1=30.0, mem_l2=30.0, mem_l3=20.0,
        )
        d = coord_cpu(c, 98.0)
        assert d.status is CoordStatus.SURPLUS
        assert d.allocation.total_w == pytest.approx(96.0)
        assert d.surplus_w == pytest.approx(2.0)


class TestCaseD:
    """P_b < L2c + L2m: rejected."""

    def test_rejected_status(self, critical):
        d = coord_cpu(critical, 90.0)
        assert d.status is CoordStatus.REJECTED
        assert not d.accepted

    def test_rejected_allocation_pins_floors(self, critical):
        d = coord_cpu(critical, 90.0)
        assert d.allocation.proc_w == pytest.approx(48.0)
        assert d.allocation.mem_w == pytest.approx(66.0)

    def test_strict_raises(self, critical):
        with pytest.raises(BudgetTooSmallError) as exc_info:
            coord_cpu(critical, 90.0, strict=True)
        assert exc_info.value.threshold_w == pytest.approx(96.0)

    def test_threshold_boundary(self, critical):
        assert coord_cpu(critical, 96.0).accepted
        assert not coord_cpu(critical, 95.9).accepted


class TestAgainstOracle:
    """End-to-end accuracy claims of Section 6.3."""

    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_large_cap_accuracy(self, ivb, name):
        # COORD within ~5% of the sweep oracle for large power caps.
        from repro.core.sweep import sweep_cpu_allocations

        wl = cpu_workload(name)
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, wl)
        budget = 240.0
        d = coord_cpu(critical, budget)
        assert d.accepted
        r = execute_on_host(
            ivb.cpu, ivb.dram, wl.phases, d.allocation.proc_w, d.allocation.mem_w
        )
        best = sweep_cpu_allocations(ivb.cpu, ivb.dram, wl, budget, step_w=4.0).perf_max
        assert wl.performance(r) >= 0.90 * best, name

    def test_allocation_never_exceeds_budget(self, ivb, sra):
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        for budget in (100.0, 150.0, 200.0, 250.0, 300.0):
            d = coord_cpu(critical, budget)
            if d.accepted:
                assert d.allocation.within(budget, tolerance_w=1e-6)

    def test_execution_respects_coordinated_caps(self, ivb, stream):
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, stream)
        d = coord_cpu(critical, 180.0)
        r = execute_on_host(
            ivb.cpu, ivb.dram, stream.phases,
            d.allocation.proc_w, d.allocation.mem_w,
        )
        assert r.respects_bound
        assert r.total_power_w <= 180.0 + 1e-6
