"""Multi-tenant co-scheduling."""

import pytest

from repro.core.critical import CpuCriticalPowers
from repro.errors import ConfigurationError, SchedulerError
from repro.perfmodel.executor import execute_on_host
from repro.sched.coschedule import (
    coschedule_pair,
    partition_host,
    split_budget,
)
from repro.workloads import cpu_workload


class TestPartitionHost:
    def test_proportional_slice(self, ivb):
        cpu_half, dram_half = partition_host(ivb.cpu, ivb.dram, 0.5)
        assert cpu_half.n_cores == ivb.cpu.n_cores // 2
        assert cpu_half.idle_power_w == pytest.approx(ivb.cpu.idle_power_w / 2)
        assert dram_half.peak_bw_gbps == pytest.approx(ivb.dram.peak_bw_gbps / 2)

    def test_asymmetric_slice(self, ivb):
        cpu_part, dram_part = partition_host(ivb.cpu, ivb.dram, 0.75, 0.25)
        assert cpu_part.n_cores == 15
        assert dram_part.peak_bw_gbps == pytest.approx(20.0)

    def test_complementary_slices_cover_node(self, ivb):
        a_cpu, a_dram = partition_host(ivb.cpu, ivb.dram, 0.25, 0.6)
        b_cpu, b_dram = partition_host(ivb.cpu, ivb.dram, 0.75, 0.4)
        assert a_cpu.n_cores + b_cpu.n_cores == ivb.cpu.n_cores
        assert a_dram.peak_bw_gbps + b_dram.peak_bw_gbps == pytest.approx(
            ivb.dram.peak_bw_gbps
        )

    def test_at_least_one_core(self, ivb):
        cpu_tiny, _ = partition_host(ivb.cpu, ivb.dram, 0.01)
        assert cpu_tiny.n_cores == 1

    def test_invalid_fractions(self, ivb):
        with pytest.raises(ConfigurationError):
            partition_host(ivb.cpu, ivb.dram, 0.0)
        with pytest.raises(ConfigurationError):
            partition_host(ivb.cpu, ivb.dram, 0.5, 1.0)

    def test_slice_is_executable(self, ivb, stream):
        cpu_part, dram_part = partition_host(ivb.cpu, ivb.dram, 0.5)
        r = execute_on_host(cpu_part, dram_part, stream.phases, 100.0, 70.0)
        assert stream.performance(r) > 0


class TestSplitBudget:
    def make(self, thr_cpu, demand_cpu, thr_mem, demand_mem):
        return CpuCriticalPowers(
            cpu_l1=demand_cpu, cpu_l2=thr_cpu, cpu_l3=thr_cpu * 0.8,
            cpu_l4=thr_cpu * 0.7, mem_l1=demand_mem, mem_l2=thr_mem,
            mem_l3=thr_mem,
        )

    def test_covers_thresholds_first(self):
        a = self.make(40.0, 80.0, 20.0, 50.0)
        b = self.make(30.0, 60.0, 15.0, 40.0)
        budgets = split_budget(a, b, 200.0)
        assert budgets is not None
        ba, bb = budgets
        assert ba >= a.productive_threshold_w
        assert bb >= b.productive_threshold_w
        assert ba + bb <= 200.0 + 1e-9

    def test_infeasible_returns_none(self):
        a = self.make(60.0, 80.0, 40.0, 50.0)
        b = self.make(60.0, 80.0, 40.0, 50.0)
        assert split_budget(a, b, 150.0) is None

    def test_demand_capped(self):
        a = self.make(40.0, 50.0, 20.0, 25.0)
        b = self.make(40.0, 50.0, 20.0, 25.0)
        ba, bb = split_budget(a, b, 500.0)
        assert ba <= a.max_demand_w + 1e-9
        assert bb <= b.max_demand_w + 1e-9


class TestCoschedulePair:
    def test_complementary_pair_beats_timesharing(self, ivb, dgemm, stream):
        result = coschedule_pair(ivb.cpu, ivb.dram, dgemm, stream, 260.0)
        assert result.weighted_speedup > 1.0
        # The compute-bound tenant traded bandwidth for cores.
        assert result.tenant_a.bw_fraction < result.tenant_a.core_fraction

    def test_progress_fractions_sane(self, ivb, dgemm, stream):
        result = coschedule_pair(ivb.cpu, ivb.dram, dgemm, stream, 260.0)
        for tenant in (result.tenant_a, result.tenant_b):
            assert 0.0 < tenant.normalized_progress < 1.0

    def test_starved_budget_raises(self, ivb, dgemm, sra):
        # Partition floors scale with the slice share, so moderate budgets
        # still host two tenants; below the summed slice thresholds the
        # search must refuse.
        with pytest.raises(SchedulerError):
            coschedule_pair(ivb.cpu, ivb.dram, dgemm, sra, 60.0)

    def test_moderate_budget_feasible_on_slices(self, ivb, dgemm, sra):
        result = coschedule_pair(ivb.cpu, ivb.dram, dgemm, sra, 120.0)
        assert result.tenant_a.budget_w + result.tenant_b.budget_w <= 120.0 + 1e-9

    def test_empty_grid_rejected(self, ivb, dgemm, stream):
        with pytest.raises(ConfigurationError):
            coschedule_pair(ivb.cpu, ivb.dram, dgemm, stream, 260.0, fractions=())
