"""Calibration anchors: the numbers the paper states explicitly.

These tests pin the model to the paper's measured values (DESIGN.md §5).
They are deliberately tolerance-banded: the goal is the *shape* of the
paper's results, with headline quantities in the right neighbourhood.
"""

import numpy as np
import pytest

from repro.core.profiler import profile_cpu_workload
from repro.core.sweep import (
    cpu_budget_curve,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.perfmodel.executor import execute_on_gpu, execute_on_host


class TestIvyBridgeAnchors:
    def test_randomaccess_component_powers(self, ivb, sra):
        # Paper Figure 3: actual powers ~112 W (CPU) and ~116 W (DRAM).
        r = execute_on_host(ivb.cpu, ivb.dram, sra.phases, 1000.0, 1000.0)
        assert r.proc_power_w == pytest.approx(112.0, abs=6.0)
        assert r.mem_power_w == pytest.approx(116.0, abs=2.0)

    def test_cpu_hardware_floor_48w(self, ivb, sra):
        # Paper scenario VI: "a minimum hardware determined power of 48 W".
        r = execute_on_host(ivb.cpu, ivb.dram, sra.phases, 5.0, 1000.0)
        assert r.proc_power_w == pytest.approx(48.0, abs=3.0)

    def test_dram_floor_near_68w(self, ivb, sra):
        # Paper scenario V begins below a DRAM cap of ~68 W.
        assert ivb.dram.floor_power_w == pytest.approx(68.0, abs=3.0)

    def test_scenario_ii_boundary_near_66w(self, ivb, sra):
        c = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        # Paper scenario IV/II boundary: P_cpu ~ 66-68 W for RandomAccess.
        assert c.cpu_l2 == pytest.approx(66.0, abs=4.0)

    def test_stream_30x_spread_at_208w(self, ivb, stream):
        # Paper Figure 1(a): up to 30x between allocations at 208 W.
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, step_w=4.0)
        assert 15.0 <= sweep.perf_spread <= 60.0

    def test_dgemm_flattens_near_240w(self, ivb, dgemm):
        budgets = np.arange(140.0, 301.0, 10.0)
        curve = cpu_budget_curve(ivb.cpu, ivb.dram, dgemm, budgets, step_w=4.0)
        assert curve.saturation_budget_w == pytest.approx(235.0, abs=25.0)

    def test_sra_optimal_at_224_matches_paper(self, ivb, sra):
        # Paper: optimal (P_cpu=108, P_mem=116) for SRA at 224 W — the
        # low-memory edge of the optimal plateau.
        from repro.core.analysis import _optimal_plateau

        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 224.0, step_w=4.0)
        lo, _ = _optimal_plateau(sweep)
        edge = sweep.points[lo].allocation
        assert edge.proc_w == pytest.approx(108.0, abs=8.0)
        assert edge.mem_w == pytest.approx(116.0, abs=8.0)


class TestHaswellAnchors:
    def test_similar_power_at_max_performance(self, ivb, has, dgemm):
        # Paper: "the two systems consume similar power when performance
        # reaches the maximum".
        budgets = np.arange(160.0, 301.0, 10.0)
        sat_i = cpu_budget_curve(ivb.cpu, ivb.dram, dgemm, budgets, step_w=6.0).saturation_budget_w
        sat_h = cpu_budget_curve(has.cpu, has.dram, dgemm, budgets, step_w=6.0).saturation_budget_w
        assert sat_h == pytest.approx(sat_i, abs=40.0)

    def test_haswell_faster_at_every_budget(self, has, ivb, dgemm):
        for budget in (120.0, 180.0, 240.0):
            s_h = sweep_cpu_allocations(has.cpu, has.dram, dgemm, budget, step_w=8.0)
            s_i = sweep_cpu_allocations(ivb.cpu, ivb.dram, dgemm, budget, step_w=8.0)
            assert s_h.perf_max > s_i.perf_max


class TestTitanAnchors:
    def test_xp_default_cap_and_range(self, xp):
        assert xp.default_cap_w == 250.0
        assert xp.max_cap_w == 300.0

    def test_xp_sgemm_demand_exceeds_300(self, xp, sgemm):
        # The cap still binds at the 300 W maximum (to within one SM
        # DVFS bin of slack under the limit).
        r = execute_on_gpu(xp, sgemm.phases, 300.0)
        assert r.total_power_w == pytest.approx(300.0, abs=12.0)
        assert r.phases[0].proc_freq_ghz < xp.sm.pstates.f_nom_ghz

    def test_xp_minife_spread_around_35pct(self, xp, minife):
        sweep = sweep_gpu_allocations(xp, minife, 250.0, freq_stride=1)
        assert sweep.perf_spread - 1.0 == pytest.approx(0.35, abs=0.12)

    def test_xp_sgemm_spread_at_most_25pct(self, xp, sgemm):
        for cap in (170.0, 210.0, 250.0, 290.0):
            sweep = sweep_gpu_allocations(xp, sgemm, cap, freq_stride=1)
            assert sweep.perf_spread <= 1.27, cap

    def test_v_stream_uses_hbm2_bandwidth(self, tv, gpu_stream):
        r = execute_on_gpu(tv, gpu_stream.phases, 250.0)
        # More bandwidth than the XP's GDDR5X can deliver.
        xp_peak = 480.0 * 0.85
        assert gpu_stream.performance(r) > xp_peak
