"""Titan V (GPU Platform II) coverage across the full GPU suite."""

import pytest

from repro.core.coord_gpu import apply_gpu_decision, coord_gpu
from repro.core.profiler import profile_gpu_workload
from repro.core.scenario import GPU_SCENARIOS, Scenario
from repro.core.sweep import sweep_gpu_allocations
from repro.hardware.nvml import NvmlDevice
from repro.perfmodel.executor import execute_on_gpu
from repro.workloads import gpu_workload, list_gpu_workloads


class TestSuiteOnTitanV:
    @pytest.mark.parametrize("name", list_gpu_workloads())
    def test_executes_and_respects_caps(self, tv, name):
        wl = gpu_workload(name)
        for cap in (110.0, 180.0, 250.0):
            r = execute_on_gpu(tv, wl.phases, cap)
            if r.respects_bound:
                assert r.total_power_w <= cap + 1e-6
            assert wl.performance(r) > 0

    @pytest.mark.parametrize("name", list_gpu_workloads())
    def test_reduced_taxonomy_holds(self, tv, name):
        wl = gpu_workload(name)
        sweep = sweep_gpu_allocations(tv, wl, 200.0, freq_stride=2)
        assert set(sweep.scenarios) <= set(GPU_SCENARIOS)

    @pytest.mark.parametrize("name", ["gpu-stream", "minife", "cufft", "hpcg"])
    def test_memory_intensive_prefers_max_clock(self, tv, name):
        # Section 4: "On Titan V, application performance is generally
        # memory bounded, and increases with memory power allocation."
        wl = gpu_workload(name)
        sweep = sweep_gpu_allocations(tv, wl, 250.0, freq_stride=1)
        assert sweep.best.result.phases[0].mem_throttle == pytest.approx(1.0)
        assert sweep.performances[-1] >= sweep.performances[0]

    @pytest.mark.parametrize("name", list_gpu_workloads())
    def test_coord_accuracy_on_v(self, tv, name):
        wl = gpu_workload(name)
        device = NvmlDevice(tv)
        critical = profile_gpu_workload(tv, wl)
        for cap in (120.0, 180.0, 250.0):
            decision = coord_gpu(critical, cap, hardware_max_w=tv.max_cap_w)
            mem_op = apply_gpu_decision(device, decision, cap)
            perf = wl.performance(execute_on_gpu(tv, wl.phases, cap, mem_op.freq_mhz))
            best = sweep_gpu_allocations(tv, wl, cap, freq_stride=1).perf_max
            assert perf >= 0.90 * best, (name, cap)

    def test_hbm2_memory_power_span_small(self, tv, xp):
        # The V's entire memory-clock sweep spans fewer watts than the XP's.
        v_span = tv.mem.max_power_w - tv.mem.floor_power_w
        xp_span = xp.mem.max_power_w - xp.mem.floor_power_w
        assert v_span < 0.6 * xp_span

    def test_category_iii_dominates_on_v(self, tv, minife):
        r = execute_on_gpu(tv, minife.phases, 250.0)
        from repro.core.scenario import classify_gpu

        assert classify_gpu(r) is Scenario.III
