"""End-to-end flows across packages — the library's intended usage paths."""

import pytest

from repro import (
    Cluster,
    Job,
    PowerBoundedScheduler,
    Scenario,
    advise_budget,
    classify_cpu,
    coord_cpu,
    coord_gpu,
    cpu_workload,
    execute_on_gpu,
    execute_on_host,
    get_platform,
    gpu_workload,
    ivybridge_node,
    memory_first_allocation,
    oracle_allocation,
    profile_cpu_workload,
    profile_gpu_workload,
    sweep_cpu_allocations,
    titan_xp_card,
)
from repro.core.budget import BudgetVerdict
from repro.core.coord_gpu import apply_gpu_decision
from repro.hardware.nvml import NvmlDevice
from repro.hardware.rapl import RaplDomainName


class TestCpuWorkflow:
    """Profile → coordinate → enforce → execute → verify, on the host."""

    def test_full_pipeline(self):
        node = ivybridge_node()
        workload = cpu_workload("mg")

        critical = profile_cpu_workload(node.cpu, node.dram, workload)
        budget = 200.0
        advice = advise_budget(critical, budget)
        assert advice.verdict is not BudgetVerdict.REJECT

        decision = coord_cpu(critical, budget)
        node.rapl.set_power_limit(RaplDomainName.PACKAGE, decision.allocation.proc_w)
        node.rapl.set_power_limit(RaplDomainName.DRAM, decision.allocation.mem_w)

        result = execute_on_host(
            node.cpu, node.dram, workload.phases,
            node.rapl.power_limit_w(RaplDomainName.PACKAGE),
            node.rapl.power_limit_w(RaplDomainName.DRAM),
            rapl=node.rapl,
        )
        assert result.respects_bound
        assert result.total_power_w <= budget + 1e-6
        assert node.rapl.read_energy_joules(RaplDomainName.PACKAGE) > 0

        # COORD lands within 12% of the (bound-respecting) sweep oracle.
        sweep = sweep_cpu_allocations(node.cpu, node.dram, workload, budget, step_w=4.0)
        assert workload.performance(result) >= 0.88 * sweep.perf_max

    def test_scenario_classification_consistent_with_powers(self):
        node = ivybridge_node()
        wl = cpu_workload("sra")
        r = execute_on_host(node.cpu, node.dram, wl.phases, 90.0, 150.0)
        scenario = classify_cpu(r)
        assert scenario is Scenario.II  # CPU lightly constrained
        # Scenario II signature: actual CPU power tracks its cap.
        assert r.proc_power_w == pytest.approx(90.0, abs=10.0)

    def test_memory_first_vs_coord_story(self):
        # The paper's Figure 9 narrative in one test: at a small budget
        # COORD balances while memory-first starves the CPU.
        node = ivybridge_node()
        wl = cpu_workload("sra")
        critical = profile_cpu_workload(node.cpu, node.dram, wl)
        budget = 160.0
        coord_alloc = coord_cpu(critical, budget).allocation
        mf_alloc = memory_first_allocation(critical, budget)
        assert coord_alloc.proc_w > mf_alloc.proc_w
        perf = {}
        for name, alloc in (("coord", coord_alloc), ("mf", mf_alloc)):
            r = execute_on_host(node.cpu, node.dram, wl.phases, alloc.proc_w, alloc.mem_w)
            perf[name] = wl.performance(r)
        assert perf["coord"] > perf["mf"]


class TestGpuWorkflow:
    def test_full_pipeline(self):
        card = titan_xp_card()
        device = NvmlDevice(card)
        workload = gpu_workload("cloverleaf")
        critical = profile_gpu_workload(card, workload)
        cap = 170.0
        decision = coord_gpu(critical, cap, hardware_max_w=card.max_cap_w)
        mem_op = apply_gpu_decision(device, decision, cap)
        result = execute_on_gpu(card, workload.phases, device.power_limit_w, mem_op.freq_mhz)
        assert result.respects_bound
        assert result.total_power_w <= cap + 1e-6

        # Beats (or at least matches) the application-oblivious default.
        device.apply_default_policy(cap_w=cap)
        default = execute_on_gpu(
            card, workload.phases, device.power_limit_w,
            device.mem_operating_point.freq_mhz,
        )
        assert workload.performance(result) >= 0.98 * workload.performance(default)

    def test_host_node_with_gpu(self):
        node = get_platform("titan-xp-host")
        wl = gpu_workload("minife")
        r = execute_on_gpu(node.gpu(0), wl.phases, 200.0)
        assert wl.performance(r) > 0


class TestSchedulerWorkflow:
    def test_mixed_queue_with_reclaim_and_rejection(self):
        cluster = Cluster(node_factory=ivybridge_node, n_nodes=3, global_bound_w=650.0)
        sched = PowerBoundedScheduler(cluster)
        jobs = [
            Job(0, cpu_workload("dgemm"), 300.0, submit_time_s=0.0),   # surplus
            Job(1, cpu_workload("stream"), 220.0, submit_time_s=0.0),
            Job(2, cpu_workload("sra"), 230.0, submit_time_s=2.0),
            Job(3, cpu_workload("ep"), 70.0, submit_time_s=3.0),       # too small
            Job(4, cpu_workload("mg"), 200.0, submit_time_s=4.0),
        ]
        for job in jobs:
            sched.submit(job)
        stats = sched.run()
        assert stats.n_completed == 4
        assert stats.n_rejected == 1
        assert stats.reclaimed_w_total > 0  # DGEMM's request was trimmed
        assert stats.peak_charged_w <= 650.0 + 1e-9
        # Every completed job ran under a COORD allocation within its grant.
        for record in sched.records.values():
            if record.allocation is not None:
                assert record.allocation.total_w <= record.granted_budget_w + 1e-9

    def test_oracle_agrees_with_coord_at_ample_budget(self):
        node = ivybridge_node()
        wl = cpu_workload("stream")
        critical = profile_cpu_workload(node.cpu, node.dram, wl)
        budget = 250.0
        coord_alloc = coord_cpu(critical, budget).allocation
        oracle = oracle_allocation(node.cpu, node.dram, wl, budget, step_w=4.0)
        r_coord = execute_on_host(
            node.cpu, node.dram, wl.phases, coord_alloc.proc_w, coord_alloc.mem_w
        )
        r_oracle = execute_on_host(
            node.cpu, node.dram, wl.phases, oracle.proc_w, oracle.mem_w
        )
        assert wl.performance(r_coord) == pytest.approx(
            wl.performance(r_oracle), rel=0.02
        )
