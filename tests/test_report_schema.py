"""Golden-schema regression for the benchmark JSON reports.

``benchmarks/_harness.write_json_report`` is the single emitter of the
machine-readable ``benchmarks/reports/*.json`` artifacts that CI and
downstream scripts consume.  This module pins the payload shape — the
exact required key set, the omit-when-None optionals, the rounding
policy, the ``cache`` sub-schema — and then validates every committed
report against it, so the shape cannot silently drift without a test
telling the reviewer what changed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.core.parallel import CacheStats

_BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:  # same import idiom the benches use
    sys.path.insert(0, str(_BENCH_DIR))

import _harness  # noqa: E402
from _harness import cache_dict, write_json_report  # noqa: E402

#: Every report carries exactly these keys before optionals/extras.
REQUIRED_KEYS = {"op", "n_points", "wall_s", "speedup", "cache"}

#: Optionals are omitted (never null) when the benchmark has no value.
OPTIONAL_KEYS = {"executions_total", "executions_saved", "disk_cache_hits"}

#: The flattened CacheStats sub-schema.  ``hit_ratio`` is the memory
#: tier alone; disk promotions are reported separately so warm-process
#: and warm-disk runs stay distinguishable in the artifacts.
CACHE_KEYS = {
    "hits", "misses", "evictions", "size", "maxsize", "hit_ratio",
    "disk_hits", "disk_hit_ratio",
}


@pytest.fixture
def reports_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(_harness, "REPORTS_DIR", tmp_path)
    return tmp_path


def emit(name: str = "unit", **kwargs) -> dict:
    path = write_json_report(name, **kwargs)
    return json.loads(path.read_text())


class TestEmitterSchema:
    def test_minimal_payload_has_exactly_the_required_keys(self, reports_dir):
        payload = emit(op="sweep", n_points=3, wall_s={"cold": 1.0})
        assert set(payload) == REQUIRED_KEYS
        assert payload["speedup"] is None
        assert payload["cache"] is None

    def test_optionals_are_omitted_not_null(self, reports_dir):
        payload = emit(
            op="sweep", n_points=3, wall_s={"cold": 1.0}, executions_total=10
        )
        assert payload["executions_total"] == 10
        assert "executions_saved" not in payload
        assert "disk_cache_hits" not in payload

    def test_full_payload_with_extras(self, reports_dir):
        stats = CacheStats(hits=3, misses=1, evictions=0, size=4, maxsize=8)
        payload = emit(
            op="sweep",
            n_points=3,
            wall_s={"cold": 1.0, "warm": 0.5},
            speedup={"warm": 2.0},
            cache=stats,
            executions_total=10,
            executions_saved=6,
            disk_cache_hits=2,
            quick=True,
            grid="fig9",
        )
        assert set(payload) == REQUIRED_KEYS | OPTIONAL_KEYS | {"quick", "grid"}
        assert payload["cache"] == cache_dict(stats)
        assert payload["quick"] is True and payload["grid"] == "fig9"

    def test_rounding_policy(self, reports_dir):
        payload = emit(
            op="sweep",
            n_points=1,
            wall_s={"cold": 1.23456789123},
            speedup={"cold": 1.23456789},
        )
        assert payload["wall_s"]["cold"] == 1.234568  # 6 decimal places
        assert payload["speedup"]["cold"] == 1.235  # 3 decimal places

    def test_cache_dict_schema(self):
        stats = CacheStats(hits=3, misses=1, evictions=0, size=4, maxsize=8,
                           disk_hits=2)
        flat = cache_dict(stats)
        assert set(flat) == CACHE_KEYS
        # 3 hits of which 2 were disk promotions: the memory tier served
        # 1 of 4 lookups, the disk tier 2 of 4.
        assert flat["hit_ratio"] == pytest.approx(0.25)
        assert flat["disk_hits"] == 2
        assert flat["disk_hit_ratio"] == pytest.approx(0.5)

    def test_hit_ratio_tiers_are_disjoint_and_complete(self):
        stats = CacheStats(hits=8, misses=2, evictions=0, size=8, maxsize=16,
                           disk_hits=3)
        assert stats.memo_hits == 5
        total = stats.hit_ratio + stats.disk_hit_ratio
        assert total == pytest.approx(stats.hits / stats.lookups)
        untouched = CacheStats(hits=0, misses=0, evictions=0, size=0, maxsize=4)
        assert untouched.hit_ratio == 0.0
        assert untouched.disk_hit_ratio == 0.0

    def test_artifact_is_byte_stable(self, reports_dir):
        # sort_keys + trailing newline: regenerating an identical run
        # must produce an identical file (clean diffs in the repo).
        kwargs = dict(op="sweep", n_points=1, wall_s={"cold": 1.0}, b=1, a=2)
        first = write_json_report("unit", **kwargs).read_bytes()
        second = write_json_report("unit", **kwargs).read_bytes()
        assert first == second
        assert first.endswith(b"\n")
        keys = list(json.loads(first))
        assert keys == sorted(keys)


def _validate(name: str, payload: dict) -> list[str]:
    """All schema violations in one committed report payload."""
    problems = []
    missing = REQUIRED_KEYS - set(payload)
    if missing:
        problems.append(f"missing required keys: {sorted(missing)}")
    if not isinstance(payload.get("op"), str):
        problems.append("op must be a string")
    if not isinstance(payload.get("n_points"), int):
        problems.append("n_points must be an integer")
    wall = payload.get("wall_s")
    if not (
        isinstance(wall, dict)
        and wall
        and all(
            isinstance(k, str) and isinstance(v, (int, float))
            for k, v in wall.items()
        )
    ):
        problems.append("wall_s must be a non-empty {pass: seconds} mapping")
    speedup = payload.get("speedup")
    if speedup is not None and not (
        isinstance(speedup, dict)
        and all(
            isinstance(k, str) and isinstance(v, (int, float))
            for k, v in speedup.items()
        )
    ):
        problems.append("speedup must be null or a {pass: ratio} mapping")
    cache = payload.get("cache")
    if cache is not None and set(cache) != CACHE_KEYS:
        problems.append(f"cache sub-schema drifted: {sorted(cache)}")
    for key in OPTIONAL_KEYS & set(payload):
        if not isinstance(payload[key], int):
            problems.append(f"{key} must be an integer when present")
    return problems


class TestCommittedReports:
    """The artifacts in benchmarks/reports/ conform to the golden schema."""

    def _report_paths(self):
        return sorted((_BENCH_DIR / "reports").glob("*.json"))

    def test_reports_exist(self):
        assert self._report_paths(), "no committed benchmark reports found"

    def test_every_committed_report_conforms(self):
        failures = {}
        for path in self._report_paths():
            problems = _validate(path.name, json.loads(path.read_text()))
            if problems:
                failures[path.name] = problems
        assert not failures, f"schema drift in committed reports: {failures}"

    def test_every_report_has_a_text_companion(self):
        for path in self._report_paths():
            assert path.with_suffix(".txt").exists(), (
                f"{path.name} has no rendered .txt companion"
            )

class TestPlannerReportFields:
    """``reports/planner.json`` carries the cold/warm dominance record.

    The planner benchmark's acceptance claim — adaptive beats the full
    sweep wall-clock cold AND warm on every figure-scale config — is
    consumed from the committed report, so its field shape and the
    >= 1.0x floors are pinned here.
    """

    _LABELS = ("fig2", "fig6", "fig9")

    @pytest.fixture(scope="class")
    def planner(self) -> dict:
        path = _BENCH_DIR / "reports" / "planner.json"
        return json.loads(path.read_text())

    def test_wall_clock_covers_every_config_mode_and_temperature(self, planner):
        for label in self._LABELS:
            for mode in ("full", "adaptive"):
                for temp in ("cold", "warm"):
                    key = f"{label}_{mode}_{temp}"
                    assert key in planner["wall_s"], key
                    assert planner["wall_s"][key] > 0.0

    def test_adaptive_dominates_cold_and_warm(self, planner):
        for label in self._LABELS:
            assert planner["speedup"][f"{label}_cold"] >= 1.0, label
            assert planner["speedup"][f"{label}_warm"] >= 1.0, label

    def test_speedups_are_consistent_with_wall_clocks(self, planner):
        for label in self._LABELS:
            for temp in ("cold", "warm"):
                ratio = (
                    planner["wall_s"][f"{label}_full_{temp}"]
                    / planner["wall_s"][f"{label}_adaptive_{temp}"]
                )
                recorded = planner["speedup"][f"{label}_{temp}"]
                assert recorded == pytest.approx(ratio, rel=1e-2)

    def test_point_ratios_meet_the_committed_floor(self, planner):
        assert set(planner["configs"]) == set(self._LABELS)
        for label, config in planner["configs"].items():
            assert config["point_ratio"] >= planner["min_point_ratio"], label
            assert config["executed_points"] < config["native_points"]


class TestParallelReportFields:
    """``reports/parallel.json`` carries the cold-parallel guard record."""

    @pytest.fixture(scope="class")
    def parallel(self) -> dict:
        path = _BENCH_DIR / "reports" / "parallel.json"
        return json.loads(path.read_text())

    def test_chunked_guard_fields_present(self, parallel):
        assert {"chunked_cold", "chunked_serial_cold"} <= set(parallel["wall_s"])
        assert parallel["chunked_grid_points"] >= 256  # past the crossover

    def test_chunked_cold_beats_serial(self, parallel):
        assert parallel["speedup"]["chunked_cold"] >= 1.0


class TestServeReportFields:
    """``reports/serve.json`` carries the serving acceptance record.

    The coordination server's headline claims — micro-batched serving
    at least 3x the unbatched throughput under 256 concurrent clients,
    warm p99 within 5x of warm p50, and served answers bit-identical
    to the direct library call — are consumed from the committed
    report, so the field shape and those floors are pinned here (the
    in-run assertions in ``bench_serve`` stay machine-independent, per
    the bench policy).
    """

    @pytest.fixture(scope="class")
    def serve(self) -> dict:
        path = _BENCH_DIR / "reports" / "serve.json"
        return json.loads(path.read_text())

    def test_load_is_at_acceptance_scale(self, serve):
        assert serve["op"] == "serve_budget_curves"
        assert serve["n_clients"] >= 256
        assert serve["n_points"] == serve["n_clients"] * serve["requests_per_client"]
        assert serve["quick"] is False

    def test_batched_serving_meets_the_3x_floor(self, serve):
        assert serve["speedup"]["batched_cold"] >= 3.0
        assert serve["speedup"]["batched_warm"] >= 3.0

    def test_speedups_are_consistent_with_wall_clocks(self, serve):
        for phase in ("batched_cold", "batched_warm"):
            ratio = serve["wall_s"]["unbatched_cold"] / serve["wall_s"][phase]
            assert serve["speedup"][phase] == pytest.approx(ratio, rel=1e-2)

    def test_warm_p99_meets_the_latency_slo(self, serve):
        p50 = serve["latency_ms"]["batched_warm_p50"]
        p99 = serve["latency_ms"]["batched_warm_p99"]
        assert p50 > 0.0
        assert p99 <= 5.0 * p50

    def test_served_answers_match_the_direct_library_call(self, serve):
        assert serve["identity"]["queries_checked"] > 0
        assert serve["identity"]["mismatches"] == 0

    def test_coalescer_engaged_on_the_redundant_load(self, serve):
        batching = serve["batching"]
        assert batching["max_batch"] > 1
        assert batching["dedup_ratio"] > 0.5
        assert batching["mean_occupancy"] > 1.0


class TestFleetReportFields:
    """``reports/fleet.json`` carries the fleet-scale acceptance record.

    The fleet simulator's headline claims — a 1,000-node/100k-job seeded
    trace driven through the batched allocation rounds, with the
    power-pressure machinery (missed-budget holds, water-filling
    re-splits, grant re-timing) actually engaged and the quantized-grant
    lattice memoizing executions — are consumed from the committed
    report, so the field shape and those floors are pinned here (the
    in-run assertions in ``bench_fleet`` stay machine-independent).
    """

    @pytest.fixture(scope="class")
    def fleet(self) -> dict:
        path = _BENCH_DIR / "reports" / "fleet.json"
        return json.loads(path.read_text())

    def test_load_is_at_acceptance_scale(self, fleet):
        assert fleet["op"] == "fleet_simulation"
        assert fleet["fleet"]["n_nodes"] >= 1_000
        assert fleet["n_points"] >= 100_000
        assert fleet["quick"] is False

    def test_headline_metrics_are_present_and_sane(self, fleet):
        assert fleet["throughput_jobs_per_hour"] > 0.0
        assert fleet["makespan_s"] > 0.0
        assert fleet["n_completed"] + fleet["n_rejected"] == fleet["n_points"]
        bound = fleet["fleet"]["global_bound_w"]
        assert 0.0 < fleet["peak_charged_w"] <= bound + 1e-6

    def test_pressure_machinery_engaged(self, fleet):
        assert fleet["n_missed_budget"] > 0
        assert fleet["n_resplits"] > 0
        assert fleet["n_retimed"] > 0

    def test_lattice_memoization_carried_the_load(self, fleet):
        cache = fleet["cache"]
        # Distinct executions stay bounded by the lattice (a few dozen
        # rows per (profile, workload) pair), not the job count.
        assert 0 < cache["misses"] < 1_000
        assert cache["hits"] > 10 * cache["misses"]
        assert fleet["n_kernel_passes"] > 0

    def test_warm_replay_recorded(self, fleet):
        assert set(fleet["wall_s"]) == {"trace_gen", "cold", "warm"}
        ratio = fleet["wall_s"]["cold"] / fleet["wall_s"]["warm"]
        assert fleet["speedup"]["warm"] == pytest.approx(ratio, rel=1e-2)
