"""Lightweight profiling (Section 5's critical power extraction)."""

import pytest

from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.errors import ProfilingError
from repro.perfmodel.executor import execute_on_host
from repro.workloads import cpu_workload, gpu_workload, list_cpu_workloads


class TestCpuProfiling:
    def test_rejects_gpu_workload(self, ivb, sgemm):
        with pytest.raises(ProfilingError):
            profile_cpu_workload(ivb.cpu, ivb.dram, sgemm)

    def test_sra_anchors(self, ivb, sra):
        # Paper's Figure 3 numbers for RandomAccess on IvyBridge.
        c = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        assert c.cpu_l1 == pytest.approx(112.0, abs=6.0)
        assert c.mem_l1 == pytest.approx(116.0, abs=3.0)
        assert c.cpu_l2 == pytest.approx(66.0, abs=4.0)
        assert c.cpu_l4 == pytest.approx(48.0)

    def test_hardware_constants_shared_across_apps(self, ivb):
        values = [
            profile_cpu_workload(ivb.cpu, ivb.dram, cpu_workload(n))
            for n in ("sra", "dgemm", "mg")
        ]
        # L4 and mem L3 are "the same across all applications".
        assert len({v.cpu_l4 for v in values}) == 1
        assert len({v.mem_l3 for v in values}) == 1

    def test_dgemm_demands_more_cpu_than_stream(self, ivb, dgemm, stream):
        c_d = profile_cpu_workload(ivb.cpu, ivb.dram, dgemm)
        c_s = profile_cpu_workload(ivb.cpu, ivb.dram, stream)
        assert c_d.cpu_l1 > c_s.cpu_l1
        assert c_d.max_demand_w > c_s.max_demand_w

    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_ordering_holds_for_whole_suite(self, ivb, name):
        c = profile_cpu_workload(ivb.cpu, ivb.dram, cpu_workload(name))
        assert c.cpu_l1 >= c.cpu_l2 >= c.cpu_l3 >= c.cpu_l4 > 0

    def test_l2_is_the_throttle_boundary(self, ivb, sra):
        # Capping slightly above L2 keeps full duty; slightly below engages
        # clock throttling.
        c = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        above = execute_on_host(ivb.cpu, ivb.dram, sra.phases, c.cpu_l2 + 1.0, 1000.0)
        below = execute_on_host(ivb.cpu, ivb.dram, sra.phases, c.cpu_l2 - 2.0, 1000.0)
        assert all(p.proc_duty == 1.0 for p in above.phases)
        assert any(p.proc_duty < 1.0 for p in below.phases)

    def test_multi_phase_uses_max_demand(self, ivb):
        bt = cpu_workload("bt")
        c = profile_cpu_workload(ivb.cpu, ivb.dram, bt)
        free = execute_on_host(ivb.cpu, ivb.dram, bt.phases, 1000.0, 1000.0)
        assert c.cpu_l1 == pytest.approx(max(p.proc_power_w for p in free.phases))
        assert c.cpu_l1 > free.proc_power_w  # exceeds the time average


class TestGpuProfiling:
    def test_rejects_cpu_workload(self, xp, stream):
        with pytest.raises(ProfilingError):
            profile_gpu_workload(xp, stream)

    def test_sgemm_demands_hardware_max(self, xp, sgemm):
        g = profile_gpu_workload(xp, sgemm)
        # "SGEMM demands more than 300 W" -> tot_max pegged at the cap.
        assert g.tot_max == pytest.approx(xp.max_cap_w)
        assert g.is_compute_intensive(xp.max_cap_w)

    def test_minife_saturates_below_max(self, xp, minife):
        g = profile_gpu_workload(xp, minife)
        assert g.tot_max < 0.8 * xp.max_cap_w
        assert not g.is_compute_intensive(xp.max_cap_w)

    def test_ordering(self, xp):
        for name in ("sgemm", "minife", "gpu-stream", "cloverleaf", "cufft", "hpcg"):
            g = profile_gpu_workload(xp, gpu_workload(name))
            assert g.tot_max >= g.tot_ref >= g.tot_min > 0, name

    def test_card_constants(self, xp, minife):
        g = profile_gpu_workload(xp, minife)
        assert g.mem_min == pytest.approx(xp.mem.floor_power_w)
        assert g.mem_max == pytest.approx(xp.mem.max_power_w)

    def test_titan_v_sgemm_not_compute_intensive_by_total(self, tv, sgemm):
        # On the V, SGEMM saturates near 180 W - well below the 300 W cap.
        g = profile_gpu_workload(tv, sgemm)
        assert g.tot_max < 0.8 * tv.max_cap_w
