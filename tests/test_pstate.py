"""P-state table: grid construction and the voltage/frequency power model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnitError
from repro.hardware.pstate import PStateTable


@pytest.fixture
def table():
    return PStateTable(f_min_ghz=1.2, f_nom_ghz=2.5, step_ghz=0.1, v_min_ratio=0.75)


class TestGrid:
    def test_endpoints_included(self, table):
        freqs = table.frequencies_ghz
        assert freqs[0] == pytest.approx(1.2)
        assert freqs[-1] == pytest.approx(2.5)

    def test_grid_size(self, table):
        assert len(table) == 14  # 1.2 .. 2.5 in 0.1 steps

    def test_grid_ascending(self, table):
        assert np.all(np.diff(table.frequencies_ghz) > 0)

    def test_grid_is_readonly(self, table):
        with pytest.raises(ValueError):
            table.frequencies_ghz[0] = 9.9

    def test_single_state_table(self):
        t = PStateTable(f_min_ghz=2.0, f_nom_ghz=2.0, step_ghz=0.1)
        assert len(t) == 1

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            PStateTable(f_min_ghz=3.0, f_nom_ghz=2.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(UnitError):
            PStateTable(f_min_ghz=-1.0, f_nom_ghz=2.0)


class TestVoltageModel:
    def test_voltage_at_endpoints(self, table):
        assert table.voltage_ratio(1.2) == pytest.approx(0.75)
        assert table.voltage_ratio(2.5) == pytest.approx(1.0)

    def test_voltage_linear_midpoint(self, table):
        mid = (1.2 + 2.5) / 2
        assert table.voltage_ratio(mid) == pytest.approx((0.75 + 1.0) / 2)

    def test_power_weight_at_nominal_is_one(self, table):
        assert table.power_weight(2.5) == pytest.approx(1.0)

    def test_power_weight_strictly_increasing(self, table):
        w = table.power_weight(table.frequencies_ghz)
        assert np.all(np.diff(w) > 0)

    def test_power_weight_cubic_ish(self, table):
        # w(f_min) = (f_min/f_nom) * v_min^2, well below the linear ratio.
        w_min = float(table.power_weight(1.2))
        assert w_min == pytest.approx((1.2 / 2.5) * 0.75**2)
        assert w_min < 1.2 / 2.5

    def test_degenerate_table_voltage(self):
        t = PStateTable(f_min_ghz=2.0, f_nom_ghz=2.0)
        assert float(t.voltage_ratio(2.0)) == pytest.approx(1.0)


class TestSelection:
    def test_nearest_snaps(self, table):
        assert table.nearest(1.234) == pytest.approx(1.2)
        assert table.nearest(1.26) == pytest.approx(1.3)

    def test_nearest_clamps(self, table):
        assert table.nearest(0.5) == pytest.approx(1.2)
        assert table.nearest(9.0) == pytest.approx(2.5)

    def test_highest_under_weight_full(self, table):
        assert table.highest_under_weight(1.0) == pytest.approx(2.5)

    def test_highest_under_weight_partial(self, table):
        f = table.highest_under_weight(0.5)
        assert f is not None
        assert f < 2.5
        assert float(table.power_weight(f)) <= 0.5 + 1e-9

    def test_highest_under_weight_infeasible(self, table):
        assert table.highest_under_weight(1e-6) is None

    def test_highest_under_weight_exact_boundary(self, table):
        w = float(table.power_weight(1.8))
        assert table.highest_under_weight(w) == pytest.approx(1.8)
