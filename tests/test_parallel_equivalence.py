"""Differential harness: the parallel sweep engine vs the serial oracle.

The contract under test (:mod:`repro.core.parallel`) is that fan-out and
memoization are *invisible*: a sweep run through a pooled, cached engine
must be bit-for-bit identical to the serial oracle — same ``SweepPoint``
tuples, same plateau spans, same scenario classifications — for every
registered workload, at any budget, in any submission order.

Fast representatives run in tier-1; the exhaustive
every-workload-every-budget matrix is ``@pytest.mark.slow`` (run with
``make test-slow`` / ``pytest -m slow``).  Property-based tests
(hypothesis, derandomized) fuzz grid steps and budgets, and check cache
statistics: hits monotone over repeats, misses frozen, mutation-safe keys.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.allocation import allocation_grid
from repro.core.parallel import (
    JOBS_ENV_VAR,
    SERIAL_CROSSOVER,
    MemoCache,
    SweepEngine,
    _chunk_indices,
    default_engine,
    fingerprint,
    freeze,
    resolve_jobs,
    set_default_engine,
    use_engine,
)
from repro.core.sweep import (
    cpu_budget_curve,
    gpu_budget_curve,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.errors import SweepError
from repro.perfmodel.executor import execute_on_host
from repro.workloads import (
    cpu_workload,
    gpu_workload,
    list_cpu_workloads,
    list_gpu_workloads,
)
from tests.conftest import plateau_span, seeded_rng, sweep_signature

# Trimmed representative matrix for tier-1: one compute-bound, one
# memory-bound, one balanced CPU workload; a compute- and a memory-leaning
# GPU workload.  The full registry runs under ``-m slow``.
CPU_FAST = ("dgemm", "stream", "sra")
CPU_BUDGETS_FAST = (144.0, 208.0)
GPU_FAST = ("sgemm", "minife")
GPU_CAPS_FAST = (150.0, 200.0)

CPU_BUDGETS_FULL = (144.0, 176.0, 208.0, 240.0, 280.0)
GPU_CAPS_FULL = (150.0, 200.0, 250.0)  # within both cards' driver ranges


def serial_engine() -> SweepEngine:
    """The oracle: scalar executor, no pool, cache too small to serve hits."""
    return SweepEngine(n_jobs=1, cache_size=1, batch=False)


def fanout_engine(n_jobs: int, backend: str = "thread") -> SweepEngine:
    """An engine that genuinely fans out onto a pool.

    ``batch=False`` keeps the scalar executor under test (the vectorized
    path is locked separately in ``tests/test_batch_equivalence.py``) and
    ``serial_crossover=0`` disables the small-grid serial shortcut so the
    pool actually runs.
    """
    return SweepEngine(n_jobs, backend=backend, batch=False, serial_crossover=0)


def assert_sweeps_identical(serial, parallel) -> None:
    """Full observable equivalence — exact, no tolerances."""
    assert sweep_signature(parallel) == sweep_signature(serial)
    assert parallel.points == serial.points
    assert plateau_span(parallel) == plateau_span(serial)
    assert parallel.scenarios == serial.scenarios
    assert parallel.best == serial.best


# ---------------------------------------------------------------------------
# tier-1 equivalence: representative workloads, thread and process backends
# ---------------------------------------------------------------------------

class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("name", CPU_FAST)
    @pytest.mark.parametrize("budget", CPU_BUDGETS_FAST)
    def test_cpu_thread_backend(self, ivb, name, budget):
        wl = cpu_workload(name)
        serial = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, wl, budget, engine=serial_engine()
        )
        parallel = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, wl, budget, engine=fanout_engine(4)
        )
        assert_sweeps_identical(serial, parallel)

    @pytest.mark.parametrize("name", GPU_FAST)
    @pytest.mark.parametrize("cap", GPU_CAPS_FAST)
    def test_gpu_thread_backend(self, xp, name, cap):
        wl = gpu_workload(name)
        serial = sweep_gpu_allocations(xp, wl, cap, engine=serial_engine())
        parallel = sweep_gpu_allocations(xp, wl, cap, engine=fanout_engine(4))
        assert_sweeps_identical(serial, parallel)
        assert np.array_equal(parallel.mem_freqs_mhz, serial.mem_freqs_mhz)
        assert np.array_equal(parallel.performances, serial.performances)

    def test_cpu_process_backend(self, ivb, stream):
        serial = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 208.0, engine=serial_engine()
        )
        parallel = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 208.0,
            engine=fanout_engine(2, backend="process"),
        )
        assert_sweeps_identical(serial, parallel)

    def test_gpu_process_backend(self, tv, sgemm):
        serial = sweep_gpu_allocations(tv, sgemm, 200.0, engine=serial_engine())
        parallel = sweep_gpu_allocations(
            tv, sgemm, 200.0, engine=fanout_engine(2, backend="process")
        )
        assert_sweeps_identical(serial, parallel)

    def test_cpu_budget_curve(self, has, dgemm):
        budgets = [150.0, 200.0, 250.0]
        serial = cpu_budget_curve(
            has.cpu, has.dram, dgemm, budgets, engine=serial_engine()
        )
        parallel = cpu_budget_curve(
            has.cpu, has.dram, dgemm, budgets, engine=fanout_engine(4)
        )
        assert np.array_equal(parallel.perf_max, serial.perf_max)
        assert np.array_equal(parallel.optimal_mem_w, serial.optimal_mem_w)
        assert parallel.saturation_budget_w == serial.saturation_budget_w

    def test_gpu_budget_curve(self, xp, minife):
        caps = [150.0, 200.0]
        serial = gpu_budget_curve(xp, minife, caps, engine=serial_engine())
        parallel = gpu_budget_curve(xp, minife, caps, engine=fanout_engine(4))
        assert np.array_equal(parallel.perf_max, serial.perf_max)
        assert np.array_equal(parallel.optimal_mem_w, serial.optimal_mem_w)

    def test_default_engine_matches_explicit_serial(self, ivb, sra):
        """The process-wide default (whatever its pool size) is the oracle too."""
        serial = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 176.0, engine=serial_engine()
        )
        with use_engine(SweepEngine(n_jobs=4)):
            parallel = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 176.0)
        assert_sweeps_identical(serial, parallel)


# ---------------------------------------------------------------------------
# exhaustive matrix: every registered workload, both platforms per device
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestFullRegistryEquivalence:
    @pytest.mark.parametrize("name", list_cpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["ivb", "has"])
    def test_cpu(self, request, platform_fixture, name):
        node = request.getfixturevalue(platform_fixture)
        wl = cpu_workload(name)
        parallel = fanout_engine(4)
        for budget in CPU_BUDGETS_FULL:
            ser = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, engine=serial_engine()
            )
            par = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, engine=parallel
            )
            assert_sweeps_identical(ser, par)

    @pytest.mark.parametrize("name", list_gpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["xp", "tv"])
    def test_gpu(self, request, platform_fixture, name):
        card = request.getfixturevalue(platform_fixture)
        wl = gpu_workload(name)
        parallel = fanout_engine(4)
        for cap in GPU_CAPS_FULL:
            ser = sweep_gpu_allocations(card, wl, cap, engine=serial_engine())
            par = sweep_gpu_allocations(card, wl, cap, engine=parallel)
            assert_sweeps_identical(ser, par)


# ---------------------------------------------------------------------------
# property-based: fuzzed grids/budgets, cache statistics, order independence
# ---------------------------------------------------------------------------

class TestProperties:
    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        budget=st.integers(min_value=25, max_value=70).map(lambda k: 4.0 * k),
        step=st.sampled_from([2.0, 3.0, 4.0, 8.0, 12.0]),
        name=st.sampled_from(CPU_FAST),
    )
    def test_fuzzed_grids_are_equivalent(self, ivb, budget, step, name):
        node = ivb
        wl = cpu_workload(name)
        ser = sweep_cpu_allocations(
            node.cpu, node.dram, wl, budget, step_w=step, engine=serial_engine()
        )
        par = sweep_cpu_allocations(
            node.cpu, node.dram, wl, budget, step_w=step, engine=fanout_engine(4)
        )
        assert_sweeps_identical(ser, par)

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        budget=st.integers(min_value=30, max_value=70).map(lambda k: 4.0 * k),
        repeats=st.integers(min_value=2, max_value=4),
    )
    def test_cache_hits_monotone_over_repeats(self, ivb, stream, budget, repeats):
        """Repeating an identical sweep only ever adds hits, never misses."""
        engine = SweepEngine(n_jobs=2)
        first = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, budget, engine=engine
        )
        baseline = engine.stats
        assert baseline.misses == len(first.points)
        assert baseline.hits == 0
        prior_hits = baseline.hits
        for _ in range(repeats):
            again = sweep_cpu_allocations(
                ivb.cpu, ivb.dram, stream, budget, engine=engine
            )
            assert again.points == first.points
            stats = engine.stats
            assert stats.misses == baseline.misses  # nothing re-executed
            assert stats.hits == prior_hits + len(first.points)
            prior_hits = stats.hits
        assert engine.stats.hit_ratio >= 0.5

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        budget=st.integers(min_value=30, max_value=70).map(lambda k: 4.0 * k),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_submission_order_is_invisible(self, ivb, dgemm, budget, seed):
        """Shuffled allocations map to the same per-allocation results."""
        allocations = allocation_grid(budget, mem_min_w=16.0, proc_min_w=8.0,
                                      step_w=4.0)
        shuffled = list(allocations)
        seeded_rng("order", seed).shuffle(shuffled)
        straight = SweepEngine(n_jobs=4).map_host(
            ivb.cpu, ivb.dram, dgemm.phases, allocations
        )
        permuted = SweepEngine(n_jobs=4).map_host(
            ivb.cpu, ivb.dram, dgemm.phases, shuffled
        )
        by_alloc = {(a.proc_w, a.mem_w): r for a, r in zip(shuffled, permuted)}
        for alloc, result in zip(allocations, straight):
            assert by_alloc[(alloc.proc_w, alloc.mem_w)] == result

    def test_duplicate_allocations_execute_once(self, ivb, stream):
        engine = SweepEngine(n_jobs=4)
        allocations = list(allocation_grid(208.0, mem_min_w=16.0,
                                           proc_min_w=8.0, step_w=8.0))
        results = engine.map_host(
            ivb.cpu, ivb.dram, stream.phases, allocations * 3
        )
        assert engine.stats.misses == len(allocations)
        assert results[: len(allocations)] * 3 == results


# ---------------------------------------------------------------------------
# mutation safety: content keys, not identity keys
# ---------------------------------------------------------------------------

class TestCacheMutationSafety:
    def test_scaled_workload_never_served_stale(self, ivb, stream):
        """A workload whose phases change must re-execute, not hit the cache.

        ``Workload.scaled`` keeps the name but rewrites the phases; keys
        are phase-content fingerprints, so the second sweep must be all
        misses and its execution times must differ.
        """
        engine = SweepEngine(n_jobs=2)
        before = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 208.0, engine=engine
        )
        stats_before = engine.stats
        mutated = stream.scaled(2.0)
        assert mutated.name == stream.name
        after = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, mutated, 208.0, engine=engine
        )
        stats_after = engine.stats
        assert stats_after.hits == stats_before.hits  # zero stale hits
        assert stats_after.misses == stats_before.misses + len(after.points)
        for b, a in zip(before.points, after.points):
            assert a.result.elapsed_s != b.result.elapsed_s

    def test_fingerprint_tracks_content(self, stream):
        assert fingerprint(stream.phases) == fingerprint(tuple(stream.phases))
        assert fingerprint(stream.phases) != fingerprint(stream.scaled(2.0).phases)

    def test_freeze_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            freeze(object())


# ---------------------------------------------------------------------------
# engine plumbing: job resolution, backends, cache bounds, default scoping
# ---------------------------------------------------------------------------

class TestEnginePlumbing:
    def test_resolve_jobs_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_resolve_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_resolve_jobs_auto_is_positive(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert 1 <= resolve_jobs() <= 8

    def test_resolve_jobs_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(SweepError):
            resolve_jobs()

    def test_resolve_jobs_rejects_nonpositive(self):
        with pytest.raises(SweepError):
            resolve_jobs(0)

    def test_bad_backend_rejected(self):
        with pytest.raises(SweepError):
            SweepEngine(n_jobs=1, backend="mpi")

    def test_cache_bound_enforced(self):
        with pytest.raises(SweepError):
            MemoCache(maxsize=0)

    def test_cache_evicts_lru(self):
        cache = MemoCache(maxsize=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == (True, 1)  # refresh 'a'
        cache.store("c", 3)  # evicts 'b'
        assert cache.lookup("b") == (False, None)
        assert cache.lookup("a") == (True, 1)
        stats = cache.stats
        assert stats.evictions == 1
        assert stats.size == 2

    def test_engine_respects_shared_cache(self, ivb, sra):
        shared = MemoCache(maxsize=512)
        sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 176.0,
            engine=SweepEngine(n_jobs=1, cache=shared),
        )
        misses = shared.stats.misses
        sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 176.0,
            engine=SweepEngine(n_jobs=4, cache=shared, batch=False, serial_crossover=0),
        )
        assert shared.stats.misses == misses  # second engine fully served

    def test_memoized_single_point_matches_direct(self, ivb, minife, sgemm):
        engine = SweepEngine(n_jobs=1)
        direct = execute_on_host(ivb.cpu, ivb.dram, sgemm.phases, 120.0, 40.0)
        assert engine.execute_host(
            ivb.cpu, ivb.dram, sgemm.phases, 120.0, 40.0
        ) == direct
        assert engine.execute_host(
            ivb.cpu, ivb.dram, sgemm.phases, 120.0, 40.0
        ) == direct
        assert engine.stats.hits == 1

    def test_use_engine_restores_previous_default(self):
        original = default_engine()
        scoped = SweepEngine(n_jobs=1)
        with use_engine(scoped) as active:
            assert active is scoped
            assert default_engine() is scoped
        assert default_engine() is original

    def test_set_default_engine_returns_previous(self):
        original = default_engine()
        replacement = SweepEngine(n_jobs=1)
        assert set_default_engine(replacement) is original
        try:
            assert default_engine() is replacement
        finally:
            set_default_engine(original)


# ---------------------------------------------------------------------------
# chunked cold fan-out: the process backend past the crossover
# ---------------------------------------------------------------------------

class TestChunkedColdFanout:
    """Pin the cold-parallel fix: chunked kernel passes, no resubmission.

    Historically a cold ``n_jobs=4`` pass regressed to 0.84x serial
    because every point crossed the pool boundary individually (one
    platform pickle per point).  The process backend now splits a cold
    grid into one contiguous chunk per worker and runs the vectorized
    kernel inside each worker, so the fix rests on two invariants locked
    here: :func:`_chunk_indices` partitions the miss list exactly once,
    and a cold chunked sweep executes each point exactly once with
    bit-identical answers.  The wall-clock side of the same scenario is
    guarded in ``benchmarks/bench_parallel.py``.
    """

    @pytest.mark.parametrize("n", (1, 2, 3, 4, 7, 59, 256, 277, 1000))
    @pytest.mark.parametrize("chunks", (1, 2, 4, 5, 16))
    def test_chunk_indices_partition(self, n, chunks):
        parts = _chunk_indices(n, chunks)
        # covering, disjoint, order-preserving: concatenation is range(n)
        assert [i for part in parts for i in part] == list(range(n))
        # never more chunks than workers or points, never an empty chunk
        assert 1 <= len(parts) <= min(chunks, n)
        assert all(parts)
        # contiguous runs, balanced to within one point
        for part in parts:
            assert part == list(range(part[0], part[0] + len(part)))
        sizes = {len(part) for part in parts}
        assert max(sizes) - min(sizes) <= 1

    def test_chunk_indices_degenerate_worker_counts(self):
        assert _chunk_indices(5, 0) == [[0, 1, 2, 3, 4]]
        assert _chunk_indices(3, 99) == [[0], [1], [2]]

    def test_cold_chunked_executes_each_point_once(self, ivb, dgemm):
        """Crossover-sized grid, cold process pool: one execution per point."""
        engine = SweepEngine(n_jobs=4, backend="process", batch=True)
        parallel = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, dgemm, 300.0, step_w=1.0,
            mem_min_w=16.0, proc_min_w=8.0, engine=engine,
        )
        n = len(parallel.points)
        assert n >= SERIAL_CROSSOVER  # genuinely past the serial shortcut
        # exactly one miss per point, zero hits, zero resubmissions
        assert engine.stats.misses == n
        assert engine.stats.hits == 0
        serial = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, dgemm, 300.0, step_w=1.0,
            mem_min_w=16.0, proc_min_w=8.0, engine=serial_engine(),
        )
        assert_sweeps_identical(serial, parallel)

    def test_cold_chunked_gpu_matches_serial(self, tv, minife):
        """Forced chunking on the GPU clock axis: exact-once, bit-identical."""
        engine = SweepEngine(
            n_jobs=4, backend="process", batch=True, serial_crossover=0
        )
        parallel = sweep_gpu_allocations(tv, minife, 200.0, engine=engine)
        assert engine.stats.misses == len(parallel.points)
        assert engine.stats.hits == 0
        serial = sweep_gpu_allocations(tv, minife, 200.0, engine=serial_engine())
        assert_sweeps_identical(serial, parallel)

    def test_warm_chunked_rerun_is_all_hits(self, ivb, dgemm):
        """The chunked path stores what it executes: warm rerun spawns no pool."""
        engine = SweepEngine(n_jobs=4, backend="process", batch=True)
        kwargs = dict(step_w=1.0, mem_min_w=16.0, proc_min_w=8.0, engine=engine)
        first = sweep_cpu_allocations(ivb.cpu, ivb.dram, dgemm, 300.0, **kwargs)
        misses = engine.stats.misses
        second = sweep_cpu_allocations(ivb.cpu, ivb.dram, dgemm, 300.0, **kwargs)
        assert engine.stats.misses == misses  # nothing re-executed
        assert engine.stats.hits == len(second.points)
        assert sweep_signature(first) == sweep_signature(second)
