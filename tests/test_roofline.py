"""Roofline primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnitError
from repro.perfmodel.roofline import (
    arithmetic_intensity,
    attainable_flops,
    phase_time_s,
    ridge_intensity,
)


class TestIntensity:
    def test_basic(self):
        assert arithmetic_intensity(100.0, 50.0) == 2.0

    def test_compute_only_is_inf(self):
        assert arithmetic_intensity(100.0, 0.0) == float("inf")

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            arithmetic_intensity(-1.0, 10.0)


class TestAttainable:
    def test_memory_bound_region(self):
        # Below the ridge, performance = intensity * bandwidth.
        assert attainable_flops(0.5, 100e9, 80e9) == pytest.approx(40e9)

    def test_compute_bound_region(self):
        assert attainable_flops(10.0, 100e9, 80e9) == pytest.approx(100e9)

    def test_vectorized(self):
        out = attainable_flops(np.array([0.1, 100.0]), 100e9, 80e9)
        assert out[0] == pytest.approx(8e9)
        assert out[1] == pytest.approx(100e9)

    def test_ridge_is_crossover(self):
        ridge = ridge_intensity(100e9, 80e9)
        below = attainable_flops(ridge * 0.99, 100e9, 80e9)
        at = attainable_flops(ridge, 100e9, 80e9)
        assert below < at
        assert at == pytest.approx(100e9)


class TestPhaseTime:
    def test_max_of_both(self):
        t, t_c, t_m = phase_time_s(100.0, 1000.0, 10.0, 50.0)
        assert t_c == pytest.approx(10.0)
        assert t_m == pytest.approx(20.0)
        assert t == pytest.approx(20.0)

    def test_compute_only(self):
        t, t_c, t_m = phase_time_s(100.0, 0.0, 10.0, 1.0)
        assert t == t_c == pytest.approx(10.0)
        assert t_m == 0.0

    def test_memory_only(self):
        t, t_c, t_m = phase_time_s(0.0, 100.0, 1.0, 10.0)
        assert t == t_m == pytest.approx(10.0)
        assert t_c == 0.0

    def test_zero_rate_rejected(self):
        with pytest.raises(UnitError):
            phase_time_s(100.0, 0.0, 0.0, 1.0)

    def test_no_work_rejected(self):
        with pytest.raises(ConfigurationError):
            phase_time_s(0.0, 0.0, 1.0, 1.0)
