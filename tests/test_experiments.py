"""Experiment harness: every figure/table regenerates with the paper's shape.

These run the experiments in ``fast`` mode (coarser sweeps) and assert the
*qualitative* claims — who wins, by roughly what factor, where crossovers
fall — not absolute numbers.
"""

import numpy as np
import pytest

from repro.core.scenario import Scenario
from repro.errors import ReproError
from repro.experiments import EXPERIMENTS, list_experiments, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {f"fig{i}" for i in range(1, 10)} | {
            "table1", "ablation", "extensions", "biglittle", "cluster",
        }
        assert set(list_experiments()) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ReproError):
            run_experiment("fig42")

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
    def test_runs_and_renders(self, exp_id):
        report = run_experiment(exp_id, fast=True)
        rendered = report.render()
        assert report.experiment_id == exp_id
        assert rendered.startswith(f"=== {exp_id}")
        assert report.tables


@pytest.fixture(scope="module")
def fig1():
    return run_experiment("fig1", fast=True)


@pytest.fixture(scope="module")
def fig2():
    return run_experiment("fig2", fast=True)


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9", fast=True)


class TestFig1Shapes:
    def test_cpu_perf_bound_monotone_then_flat(self, fig1):
        perf = fig1.data["cpu_curve"]["perf"]
        assert np.all(np.diff(perf) >= -1e-9)
        # Flattens: the last two budgets deliver the same performance.
        assert perf[-1] == pytest.approx(perf[-2], rel=1e-6)

    def test_cpu_allocation_spread_dramatic(self, fig1):
        # Paper: up to 30x between best and worst at 208 W.
        sweep = fig1.data["cpu_sweep"]
        assert sweep.perf_spread > 10.0

    def test_gpu_allocation_spread_over_30pct(self, fig1):
        # Paper: best over 30 % above the poorest at 140 W.
        sweep = fig1.data["gpu_sweep"]
        assert sweep.perf_spread > 1.25

    def test_power_capping_keeps_totals_under_budget(self, fig1):
        for p in fig1.data["cpu_sweep"].points:
            if p.result.respects_bound:
                assert p.actual_total_w <= 208.0 + 1e-6
        for p in fig1.data["gpu_sweep"].points:
            if p.result.respects_bound:
                assert p.actual_total_w <= 140.0 + 1e-6

    def test_budget_fully_consumed_even_at_poor_perf(self, fig1):
        # Paper observation 4: some allocations burn most of the budget
        # while delivering very poor performance.
        sweep = fig1.data["cpu_sweep"]
        assert any(
            p.actual_total_w > 0.7 * sweep.budget_w
            and p.performance < 0.5 * sweep.perf_max
            for p in sweep.points
        )


class TestFig2Shapes:
    @pytest.mark.parametrize("wl", ["dgemm", "sra"])
    def test_monotone_saturating(self, fig2, wl):
        for plat in ("ivybridge", "haswell"):
            curve = fig2.data[wl][plat]
            assert np.all(np.diff(curve.perf_max) >= -1e-9)
            assert curve.perf_max[-1] == pytest.approx(curve.perf_max[-2], rel=0.01)

    def test_dgemm_saturates_near_240_on_ivybridge(self, fig2):
        curve = fig2.data["dgemm"]["ivybridge"]
        assert 200.0 <= curve.saturation_budget_w <= 260.0

    def test_dgemm_demands_more_than_stream(self, ivb):
        # Paper: "DGEMM ... has a larger max power demand than STREAM".
        from repro.core.profiler import profile_cpu_workload
        from repro.workloads import cpu_workload

        d = profile_cpu_workload(ivb.cpu, ivb.dram, cpu_workload("dgemm"))
        s = profile_cpu_workload(ivb.cpu, ivb.dram, cpu_workload("stream"))
        assert d.max_demand_w > s.max_demand_w

    def test_haswell_wins_at_small_budgets(self, fig2):
        for wl in ("dgemm", "sra"):
            ivb = fig2.data[wl]["ivybridge"].perf_max[0]
            has = fig2.data[wl]["haswell"].perf_max[0]
            assert has > ivb


class TestFig3Shapes:
    def test_all_six_categories_present(self):
        report = run_experiment("fig3", fast=True)
        assert set(report.data["spans"]) == set(Scenario)

    def test_scenario_vi_worst(self):
        report = run_experiment("fig3", fast=True)
        sweep = report.data["sweep"]
        worst = sweep.worst
        assert worst.scenario is Scenario.VI


class TestFig4Shapes:
    def test_categories_shrink_with_budget(self):
        report = run_experiment("fig4", fast=True)
        sweeps = report.data["sra"]
        n_cats = {b: len(set(s.scenarios)) for b, s in sweeps.items()}
        assert n_cats[176.0] <= n_cats[240.0]

    def test_scenario_i_disappears_at_low_budget(self):
        report = run_experiment("fig4", fast=True)
        sweeps = report.data["sra"]
        assert Scenario.I in set(sweeps[240.0].scenarios)
        assert Scenario.I not in set(sweeps[176.0].scenarios)


class TestFig5Shapes:
    def test_optimum_balances_both_domains(self):
        report = run_experiment("fig5", fast=True)
        for wl in ("dgemm", "stream"):
            data = report.data[wl]
            best_mem = data["optimal_mem_w"]
            best_pt = min(
                data["points"], key=lambda bp: abs(bp.allocation.mem_w - best_mem)
            )
            assert best_pt.compute_utilization > 0.75
            assert best_pt.mem_utilization > 0.75

    def test_skewed_allocations_unbalanced(self):
        report = run_experiment("fig5", fast=True)
        pts = report.data["stream"]["points"]
        lowest_mem = min(pts, key=lambda bp: bp.allocation.mem_w)
        # Memory-starved STREAM: compute idles relative to its capacity or
        # memory runs at full tilt while compute capacity idles.
        assert (
            abs(lowest_mem.compute_utilization - lowest_mem.mem_utilization) > 0.1
            or lowest_mem.mem_utilization > 0.9
        )


class TestFig6Shapes:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_experiment("fig6", fast=True)

    def test_xp_sgemm_never_flattens(self, fig6):
        curve = fig6.data["titan-xp/sgemm"]["curve"]
        assert curve.perf_max[-1] > curve.perf_max[-3] * 1.01

    def test_xp_minife_saturates_early(self, fig6):
        curve = fig6.data["titan-xp/minife"]["curve"]
        assert curve.saturation_budget_w <= 200.0

    def test_v_sgemm_saturates_in_range(self, fig6):
        curve = fig6.data["titan-v/sgemm"]["curve"]
        assert curve.saturation_budget_w <= 230.0

    def test_v_minife_flat_in_studied_range(self, fig6):
        # Flat across the paper's studied range (caps of ~180 W and up);
        # the V's driver allows caps down to 100 W where demand can bind.
        curve = fig6.data["titan-v/minife"]["curve"]
        assert curve.saturation_budget_w <= 185.0

    def test_default_policy_falls_short_somewhere(self, fig6):
        # "The default power capping mechanism for Nvidia GPUs fails to
        # reach the maximum performance."
        shortfalls = []
        for key, data in fig6.data.items():
            shortfalls.append(np.max(1.0 - data["default"] / data["curve"].perf_max))
        assert max(shortfalls) > 0.05


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_experiment("fig7", fast=True)

    def test_xp_sgemm_best_at_min_memory(self, fig7):
        sweeps = fig7.data["titan-xp/sgemm"]
        for cap, sweep in sweeps.items():
            if cap <= 230.0:  # cap binding
                assert sweep.best.result.phases[0].mem_throttle < 1.0, cap

    def test_xp_stream_rises_with_memory_at_large_cap(self, fig7):
        sweep = fig7.data["titan-xp/gpu-stream"][230.0]
        perfs = sweep.performances
        assert perfs[-1] >= perfs[0]
        assert sweep.best.result.phases[0].mem_throttle == pytest.approx(1.0)

    def test_xp_stream_nonmonotone_at_small_cap(self, fig7):
        # Rising then falling: balance beats both extremes at 140 W.
        sweep = fig7.data["titan-xp/gpu-stream"][140.0]
        perfs = sweep.performances
        best_idx = int(np.argmax(perfs))
        assert 0 < best_idx < len(perfs) - 1

    def test_titan_v_memory_bound(self, fig7):
        for wl in ("gpu-stream", "minife"):
            for cap, sweep in fig7.data[f"titan-v/{wl}"].items():
                assert sweep.best.result.phases[0].mem_throttle == pytest.approx(1.0)


class TestFig8Shapes:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_experiment("fig8", fast=True)

    def test_every_benchmark_profiled(self, fig8):
        from repro.workloads import list_cpu_workloads, list_gpu_workloads

        for name in list_cpu_workloads():
            assert any(k.startswith(f"ivybridge/{name}/") for k in fig8.data)
        for name in list_gpu_workloads():
            assert any(k.startswith(f"titan-xp/{name}/") for k in fig8.data)

    def test_memory_intensive_workloads_favor_memory(self, fig8):
        mg = fig8.data["ivybridge/mg/208"]
        dg = fig8.data["ivybridge/dgemm/208"]
        # MG's optimum allocates more watts to memory than DGEMM's.
        assert mg.best.allocation.mem_w > dg.best.allocation.mem_w


class TestFig9Shapes:
    def test_cpu_coord_accuracy(self, fig9):
        gaps, large_gaps = [], []
        for (name, budget), row in fig9.data["cpu"].items():
            if not np.isfinite(row["coord"]):
                continue
            gap = 1.0 - row["coord"] / row["best"]
            gaps.append(gap)
            if budget >= 208.0:
                large_gaps.append(gap)
        # Paper: 9.6 % average over all caps, < 5 % for large caps.
        assert np.mean(gaps) < 0.15
        assert np.mean(large_gaps) < 0.06

    def test_coord_beats_memory_first_at_small_budgets(self, fig9):
        wins = 0
        total = 0
        for (name, budget), row in fig9.data["cpu"].items():
            if budget <= 176.0 and np.isfinite(row["coord"]):
                total += 1
                if row["coord"] >= row["memory_first"] * 0.999:
                    wins += 1
        assert wins >= 0.7 * total

    def test_gpu_coord_accuracy(self, fig9):
        gaps = [
            1.0 - row["coord"] / row["best"] for row in fig9.data["gpu"].values()
        ]
        assert np.mean(gaps) < 0.05  # paper: < 2 % (full-resolution sweeps)

    def test_gpu_coord_beats_default_somewhere(self, fig9):
        advantages = [
            row["coord"] / row["default"] - 1.0 for row in fig9.data["gpu"].values()
        ]
        assert max(advantages) > 0.05
        # ... and never catastrophically loses to it.
        assert min(advantages) > -0.10


class TestTable1Shapes:
    def test_progression(self):
        report = run_experiment("table1", fast=True)
        rows = report.data["rows"]
        assert rows[0].critical is None
        assert Scenario.I in rows[0].intersection
        by_budget = {r.budget_w: r for r in rows}
        assert by_budget[224.0].critical == "DRAM"
        assert set(by_budget[224.0].intersection) == {Scenario.II, Scenario.III}


class TestAblationShapes:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_experiment("ablation", fast=True)

    def test_gamma_half_competitive(self, ablation):
        # gamma = 0.5 (the paper's choice) is within 10 % of the best gamma
        # for every (workload, cap) studied.
        data = ablation.data["gamma"]
        keys = {(wl, cap) for (wl, cap, _g) in data}
        for wl, cap in keys:
            by_gamma = {g: data[(wl, cap, g)]["perf"] for (w, c, g) in data
                        if (w, c) == (wl, cap)}
            best = max(by_gamma.values())
            assert by_gamma[0.5] >= 0.90 * best, (wl, cap)

    def test_coarser_stepping_never_better(self, ablation):
        data = ablation.data["stepping"]
        keys = {(wl, b) for (wl, b, _s) in data}
        for wl, b in keys:
            by_step = {s: data[(wl, b, s)]["perf"] for (w, bb, s) in data
                       if (w, bb) == (wl, b)}
            steps = sorted(by_step)
            assert by_step[steps[0]] >= by_step[steps[-1]] - 1e-9

    def test_memory_first_never_beats_coord_by_much(self, ablation):
        data = ablation.data["memory_first"]
        for row in data.values():
            assert row["coord"] >= 0.90 * row["memory_first"]
