"""Energy-efficiency analysis."""

import numpy as np
import pytest

from repro.core.efficiency import efficiency_curve, sweep_efficiency
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import SweepError
from repro.workloads import cpu_workload


@pytest.fixture(scope="module")
def sra_curve(ivb, sra):
    return efficiency_curve(
        ivb.cpu, ivb.dram, sra, np.arange(130.0, 281.0, 15.0), step_w=8.0
    )


class TestEfficiencyCurve:
    def test_point_metrics(self, sra_curve):
        p = sra_curve.points[0]
        assert p.perf_per_watt == pytest.approx(p.performance / p.actual_power_w)
        assert p.energy_delay_product == pytest.approx(p.energy_j * p.elapsed_s)

    def test_small_budgets_inefficient(self, sra_curve):
        # Section 3.1: low budgets give low performance AND low efficiency.
        eff = sra_curve.perf_per_watt
        assert eff[0] < eff.max()

    def test_overprovision_inefficient(self, ivb, dgemm):
        # Power beyond demand cannot raise perf/W above the peak.
        curve = efficiency_curve(
            ivb.cpu, ivb.dram, dgemm, np.arange(150.0, 301.0, 25.0), step_w=8.0
        )
        assert curve.peak_efficiency_budget_w < 300.0

    def test_peak_inside_band(self, sra_curve):
        lo, hi = sra_curve.efficient_band_w()
        assert lo <= sra_curve.peak_efficiency_budget_w <= hi

    def test_band_widens_with_tolerance(self, sra_curve):
        tight_lo, tight_hi = sra_curve.efficient_band_w(tolerance=0.98)
        loose_lo, loose_hi = sra_curve.efficient_band_w(tolerance=0.7)
        assert loose_lo <= tight_lo and loose_hi >= tight_hi

    def test_edp_improves_with_budget_until_saturation(self, sra_curve):
        # Energy-delay product strictly favours faster execution here
        # because time enters twice.
        edp = sra_curve.edp
        assert edp[0] > edp[-1]

    def test_empty_budgets_rejected(self, ivb, sra):
        with pytest.raises(SweepError):
            efficiency_curve(ivb.cpu, ivb.dram, sra, [])


class TestSweepEfficiency:
    def test_poor_allocations_doubly_bad(self, ivb, sra):
        # The best allocation also has (near-)best perf/W within a budget:
        # poor allocations waste watts on top of losing performance.
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 208.0, step_w=8.0)
        eff = sweep_efficiency(sweep)
        best_idx = sweep.points.index(sweep.best)
        assert eff[best_idx] >= 0.9 * eff.max()
        assert eff.min() < 0.4 * eff.max()

    def test_shape_matches_points(self, ivb, stream):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, step_w=16.0)
        assert sweep_efficiency(sweep).shape == (len(sweep.points),)
