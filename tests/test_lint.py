"""The repro invariant linter: fixtures fire, suppressions hold, tree is clean.

Each ``tests/lint_fixtures/<rule>/`` directory is a tiny project with
known violations; the tests pin the exact rule ids and line numbers that
fire, that legitimate constructs nearby stay silent, and that the full
``src/repro`` tree (the self-check the CI gate runs) reports zero
findings.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import LintConfig, LintError, rule_catalog, run_lint
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


def findings(directory: Path, **config) -> list:
    return run_lint([directory], LintConfig(**config))


def locations(diags, rule_id: str) -> list[tuple[str, int]]:
    return [
        (Path(d.path).name, d.line) for d in diags if d.rule_id == rule_id
    ]


# ---------------------------------------------------------------------------
# per-rule fixtures
# ---------------------------------------------------------------------------

class TestRuleFixtures:
    def test_rpl001_purity_fires_on_reachable_functions(self):
        diags = findings(FIXTURES / "rpl001")
        assert locations(diags, "RPL001") == [
            ("batchwork.py", 7),  # os.getenv
            ("batchwork.py", 8),  # print
            ("plannerwork.py", 21),  # open (disk I/O on the planner path)
            ("work.py", 12),  # np.random.default_rng
            ("work.py", 17),  # time.time
            ("work.py", 18),  # print
            ("work.py", 19),  # os.environ
            ("work.py", 20),  # global
        ]

    def test_rpl001_unreachable_functions_are_exempt(self):
        diags = findings(FIXTURES / "rpl001")
        lines = [d.line for d in diags if d.path.endswith("work.py")]
        # `unreachable_is_fine` uses time.perf_counter with no finding.
        assert all(line <= 22 for line in lines)

    def test_rpl001_explicit_entry_extends_the_graph(self):
        diags = findings(
            FIXTURES / "rpl001",
            purity_entries=("work.unreachable_is_fine",),
        )
        assert ("work.py", 27) in locations(diags, "RPL001")

    def test_rpl001_batch_entry_fires_via_engine_dispatch(self):
        # `run_batch` is only reachable through the engine's
        # execute_batch dispatch — the same shape as the real
        # SweepEngine handing whole grids to the vectorized kernel.
        diags = findings(FIXTURES / "rpl001")
        batch_hits = [loc for loc in locations(diags, "RPL001")
                      if loc[0] == "batchwork.py"]
        assert batch_hits == [("batchwork.py", 7), ("batchwork.py", 8)]

    def test_rpl001_disk_io_fires_on_planner_path_only(self):
        # Disk I/O inside the memoized planner entry fires; the same
        # I/O behind a cache object's instance method stays silent —
        # the shape that keeps DiskCache persistence off pure paths.
        diags = findings(FIXTURES / "rpl001")
        planner_hits = [loc for loc in locations(diags, "RPL001")
                        if loc[0] == "plannerwork.py"]
        assert planner_hits == [("plannerwork.py", 21)]

    def test_rpl002_lock_discipline(self):
        diags = findings(FIXTURES / "rpl002")
        assert locations(diags, "RPL002") == [
            ("asyncserve.py", 12),  # unguarded store in async def
            ("asyncserve.py", 16),  # unguarded .append in async def
            ("shared.py", 13),  # unguarded subscript store
            ("shared.py", 17),  # unguarded .append
            ("shared.py", 22),  # unguarded global rebind
        ]

    def test_rpl002_async_with_lock_guards(self):
        # `async with _STATE_LOCK:` satisfies lock discipline exactly
        # like its synchronous sibling — only the unguarded async
        # mutations in the fixture may fire.
        diags = findings(FIXTURES / "rpl002")
        async_hits = [loc for loc in locations(diags, "RPL002")
                      if loc[0] == "asyncserve.py"]
        assert async_hits == [("asyncserve.py", 12), ("asyncserve.py", 16)]

    def test_rpl002_serve_package_is_always_checked(self):
        from repro.lint.rules.locks import _always_checked

        assert _always_checked("repro.serve")
        assert _always_checked("repro.serve.service")
        assert _always_checked("repro.core.parallel")
        assert not _always_checked("repro.core.sweep")
        assert not _always_checked("repro.serves.other")

    def test_rpl003_float_equality(self):
        diags = findings(FIXTURES / "rpl003")
        assert locations(diags, "RPL003") == [
            ("floats.py", 5),
            ("floats.py", 7),
        ]

    def test_rpl003_suppression_is_honored(self):
        diags = findings(FIXTURES / "rpl003")
        assert ("floats.py", 9) not in locations(diags, "RPL003")

    def test_rpl004_budget_conservation(self):
        diags = findings(FIXTURES / "rpl004")
        assert locations(diags, "RPL004") == [
            ("alloc.py", 5),
            ("alloc.py", 6),
            ("alloc.py", 7),
        ]

    def test_rpl005_determinism(self):
        diags = findings(FIXTURES / "rpl005")
        assert locations(diags, "RPL005") == [
            ("figure.py", 12),
            ("figure.py", 14),
            ("figure.py", 15),
            ("figure.py", 16),
            ("figure.py", 17),
        ]

    def test_every_rule_has_a_firing_fixture(self):
        fired = set()
        for rule_dir in sorted(FIXTURES.iterdir()):
            if rule_dir.is_dir():
                fired.update(d.rule_id for d in findings(rule_dir))
        assert fired == set(rule_catalog())

    def test_select_restricts_rules(self):
        diags = findings(FIXTURES / "rpl003", select=frozenset({"RPL004"}))
        assert diags == []


# ---------------------------------------------------------------------------
# self-check: the real tree is clean
# ---------------------------------------------------------------------------

class TestSelfCheck:
    def test_src_repro_reports_zero_findings(self):
        assert run_lint([SRC_REPRO]) == []

    def test_default_purity_entries_name_the_batch_kernels(self):
        from repro.lint import DEFAULT_PURITY_ENTRIES

        assert DEFAULT_PURITY_ENTRIES == (
            "repro.core.diskcache.decode_result",
            "repro.core.diskcache.digest_key",
            "repro.core.diskcache.encode_result",
            "repro.core.planner._plan_axis",
            "repro.core.planner._probe_indices",
            "repro.perfmodel.batch.GpuBatchKernel.execute_indices",
            "repro.perfmodel.batch.HostBatchKernel.execute_indices",
            "repro.perfmodel.batch.execute_gpu_batch",
            "repro.perfmodel.batch.execute_host_batch",
        )
        assert LintConfig().purity_entries == DEFAULT_PURITY_ENTRIES

    def test_batch_kernel_is_rooted_and_traversed_in_the_real_tree(self):
        # The purity contract must cover the vectorized kernels both as
        # explicit roots and via the engine-module auto-detection, and
        # reachability must descend into their private helpers.
        from repro.lint import DEFAULT_PURITY_ENTRIES
        from repro.lint.callgraph import CallGraph
        from repro.lint.engine import load_project

        project = load_project([SRC_REPRO])
        graph = CallGraph.build(project, extra_entries=DEFAULT_PURITY_ENTRIES)
        assert set(DEFAULT_PURITY_ENTRIES) <= graph.entries

        # Auto-detection alone (the SweepEngine module's cross-module
        # calls) already roots the full-axis kernels and the sub-grid
        # gather door; the kernel methods, the planner's axis search,
        # and the disk-cache codecs need the explicit entries.
        auto = CallGraph.build(project)
        assert {
            "repro.perfmodel.batch.batch_execute_indices",
            "repro.perfmodel.batch.execute_gpu_batch",
            "repro.perfmodel.batch.execute_host_batch",
        } <= auto.entries

        reachable = graph.reachable()
        for helper in (
            "repro.perfmodel.batch._resolve_cpu_batch",
            "repro.perfmodel.batch._resolve_dram_batch",
            "repro.perfmodel.batch._host_phase_batch",
            "repro.perfmodel.batch._gpu_phase_batch",
            "repro.perfmodel.batch.HostBatchKernel.execute_indices",
            "repro.perfmodel.batch.GpuBatchKernel.execute_indices",
            "repro.core.planner._one_contiguous_run",
            "repro.core.planner._unimodal_within_tol",
        ):
            assert helper in reachable

    def test_module_cli_exits_zero_on_clean_tree(self):
        assert lint_main([str(SRC_REPRO)]) == 0

    def test_repro_lint_subcommand_exits_zero(self, capsys):
        assert repro_main(["lint", str(SRC_REPRO)]) == 0
        assert "0 findings" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# CLI behavior
# ---------------------------------------------------------------------------

class TestCli:
    def test_nonzero_exit_and_rule_ids_on_violations(self, capsys):
        code = lint_main([str(FIXTURES / "rpl003")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPL003" in out
        assert "floats.py:5" in out

    def test_json_output_parses(self, capsys):
        code = lint_main([str(FIXTURES / "rpl004"), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["count"] == 3
        assert {f["rule"] for f in doc["findings"]} == {"RPL004"}
        first = doc["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "severity", "message"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
            assert rule_id in out

    def test_select_option(self, capsys):
        code = lint_main([str(FIXTURES / "rpl003"), "--select", "RPL004"])
        assert code == 0

    def test_missing_path_is_a_usage_error(self, capsys):
        assert lint_main([str(FIXTURES / "does-not-exist")]) == 2
        assert "error" in capsys.readouterr().err

    def test_python_dash_m_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(FIXTURES / "rpl005")],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RPL005" in proc.stdout


# ---------------------------------------------------------------------------
# engine/library details
# ---------------------------------------------------------------------------

class TestEngineDetails:
    def test_diagnostics_are_sorted_and_stable(self):
        diags = findings(FIXTURES / "rpl001")
        assert diags == sorted(diags)
        assert findings(FIXTURES / "rpl001") == diags

    def test_lint_error_on_non_python_target(self, tmp_path):
        target = tmp_path / "data.txt"
        target.write_text("not python")
        with pytest.raises(LintError):
            run_lint([target])

    def test_syntax_error_is_reported_as_lint_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintError):
            run_lint([tmp_path])

    def test_file_level_suppression(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "# repro-lint: disable-file=RPL003 -- fixture-wide waiver\n"
            "def f(proc_w, budget_w):\n"
            "    return proc_w == budget_w\n"
        )
        assert run_lint([tmp_path]) == []

    def test_directive_inside_string_is_inert(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            'WAIVER = "# repro-lint: disable-file=RPL003"\n'
            "def f(proc_w, budget_w):\n"
            "    return proc_w == budget_w\n"
        )
        diags = run_lint([tmp_path])
        assert [d.rule_id for d in diags] == ["RPL003"]
