"""Differential harness: the vectorized batch kernel vs the scalar oracle.

The contract under test (:mod:`repro.perfmodel.batch` and its wiring into
:class:`~repro.core.parallel.SweepEngine`) is *bit-for-bit* equivalence:
resolving a whole allocation grid in one NumPy pass must reproduce every
``ExecutionResult`` field — powers, times, utilization, operating points,
mechanisms — and every derived sweep output (performance, scenario
classification, plateau span, best point) exactly, with no tolerances.

Tier-1 runs the full workload registry on representative budgets/caps plus
hypothesis-fuzzed synthetic platforms; the exhaustive budget matrix is
``@pytest.mark.slow``.  The harness also locks the engine-level contract:
the batch path fills the same memo cache point-by-point, so cache
statistics and warm-sweep behaviour are indistinguishable from the scalar
path, and ``REPRO_BATCH=0`` / ``SweepEngine(batch=False)`` remain a true
escape hatch.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import allocation_grid
from repro.core.parallel import (
    BATCH_ENV_VAR,
    SERIAL_CROSSOVER,
    SweepEngine,
    resolve_batch,
    use_engine,
)
from repro.core.scenario import classify_cpu, classify_gpu
from repro.core.sweep import (
    AllocationSweep,
    cpu_budget_curve,
    gpu_budget_curve,
    optimal_plateau,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.errors import SweepError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.pstate import PStateTable
from repro.perfmodel.batch import execute_gpu_batch, execute_host_batch
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.perfmodel.phase import Phase
from repro.workloads import (
    cpu_workload,
    gpu_workload,
    list_cpu_workloads,
    list_gpu_workloads,
)
from tests.conftest import plateau_span, sweep_signature

CPU_BUDGETS_FAST = (144.0, 208.0)
GPU_CAPS_FAST = (150.0, 200.0)
CPU_BUDGETS_FULL = (144.0, 176.0, 208.0, 240.0, 280.0)
GPU_CAPS_FULL = (150.0, 200.0, 250.0)


def scalar_engine() -> SweepEngine:
    """The oracle: scalar executor, no pool, cache too small to serve hits."""
    return SweepEngine(n_jobs=1, cache_size=1, batch=False)


def batch_engine() -> SweepEngine:
    """The engine under test: vectorized misses, no pool."""
    return SweepEngine(n_jobs=1, batch=True)


def assert_results_identical(scalar, batch) -> None:
    """Every ExecutionResult field, exactly — plus the derived aggregates."""
    assert batch == scalar
    assert batch.proc_cap_w == scalar.proc_cap_w
    assert batch.mem_cap_w == scalar.mem_cap_w
    assert batch.device == scalar.device
    for ps, pb in zip(scalar.phases, batch.phases):
        for field in dataclasses.fields(ps):
            assert getattr(pb, field.name) == getattr(ps, field.name), field.name
    assert batch.elapsed_s == scalar.elapsed_s
    assert batch.proc_power_w == scalar.proc_power_w
    assert batch.mem_power_w == scalar.mem_power_w
    assert batch.respects_bound == scalar.respects_bound


def assert_sweeps_identical(scalar, batch) -> None:
    """Full observable sweep equivalence — exact, no tolerances."""
    assert sweep_signature(batch) == sweep_signature(scalar)
    assert batch.points == scalar.points
    assert plateau_span(batch) == plateau_span(scalar)
    assert batch.scenarios == scalar.scenarios
    assert batch.best == scalar.best


# ---------------------------------------------------------------------------
# kernel-level equivalence: full registry, representative budgets
# ---------------------------------------------------------------------------

class TestHostKernelEquivalence:
    @pytest.mark.parametrize("name", list_cpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["ivb", "has"])
    def test_full_registry(self, request, platform_fixture, name):
        node = request.getfixturevalue(platform_fixture)
        wl = cpu_workload(name)
        for budget in CPU_BUDGETS_FAST:
            allocations = allocation_grid(
                budget, mem_min_w=16.0, proc_min_w=8.0, step_w=4.0
            )
            batch = execute_host_batch(
                node.cpu,
                node.dram,
                wl.phases,
                [a.proc_w for a in allocations],
                [a.mem_w for a in allocations],
            )
            assert len(batch) == len(allocations)
            for alloc, result in zip(allocations, batch):
                scalar = execute_on_host(
                    node.cpu, node.dram, wl.phases, alloc.proc_w, alloc.mem_w
                )
                assert_results_identical(scalar, result)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", list_cpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["ivb", "has"])
    def test_full_budget_matrix(self, request, platform_fixture, name):
        node = request.getfixturevalue(platform_fixture)
        wl = cpu_workload(name)
        for budget in CPU_BUDGETS_FULL:
            allocations = allocation_grid(
                budget, mem_min_w=16.0, proc_min_w=8.0, step_w=4.0
            )
            batch = execute_host_batch(
                node.cpu,
                node.dram,
                wl.phases,
                [a.proc_w for a in allocations],
                [a.mem_w for a in allocations],
            )
            for alloc, result in zip(allocations, batch):
                scalar = execute_on_host(
                    node.cpu, node.dram, wl.phases, alloc.proc_w, alloc.mem_w
                )
                assert_results_identical(scalar, result)

    def test_empty_grid_returns_empty(self, ivb, stream):
        assert execute_host_batch(ivb.cpu, ivb.dram, stream.phases, [], []) == []

    def test_no_phases_rejected(self, ivb):
        with pytest.raises(SweepError):
            execute_host_batch(ivb.cpu, ivb.dram, (), [100.0], [40.0])

    def test_mismatched_columns_rejected(self, ivb, stream):
        with pytest.raises(SweepError):
            execute_host_batch(
                ivb.cpu, ivb.dram, stream.phases, [100.0, 120.0], [40.0]
            )


class TestGpuKernelEquivalence:
    @pytest.mark.parametrize("name", list_gpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["xp", "tv"])
    def test_full_registry(self, request, platform_fixture, name):
        card = request.getfixturevalue(platform_fixture)
        wl = gpu_workload(name)
        freqs = [float(f) for f in card.mem.frequencies_mhz]
        for cap in GPU_CAPS_FAST:
            batch = execute_gpu_batch(card, wl.phases, cap, freqs)
            assert len(batch) == len(freqs)
            for freq, result in zip(freqs, batch):
                scalar = execute_on_gpu(card, wl.phases, cap, freq)
                assert_results_identical(scalar, result)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", list_gpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["xp", "tv"])
    def test_full_cap_matrix(self, request, platform_fixture, name):
        card = request.getfixturevalue(platform_fixture)
        wl = gpu_workload(name)
        freqs = [float(f) for f in card.mem.frequencies_mhz]
        for cap in GPU_CAPS_FULL:
            batch = execute_gpu_batch(card, wl.phases, cap, freqs)
            for freq, result in zip(freqs, batch):
                scalar = execute_on_gpu(card, wl.phases, cap, freq)
                assert_results_identical(scalar, result)

    def test_empty_clock_list_returns_empty(self, xp, sgemm):
        assert execute_gpu_batch(xp, sgemm.phases, 200.0, []) == []

    def test_out_of_range_cap_rejected(self, xp, sgemm):
        from repro.errors import PowerBoundError

        with pytest.raises(PowerBoundError):
            execute_gpu_batch(
                xp, sgemm.phases, 1.0, [float(xp.mem.nominal_mhz)]
            )


# ---------------------------------------------------------------------------
# sweep-level equivalence through the engine (plateau, scenarios, curves)
# ---------------------------------------------------------------------------

class TestSweepEquivalence:
    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_cpu_sweeps(self, ivb, name):
        wl = cpu_workload(name)
        for budget in CPU_BUDGETS_FAST:
            scalar = sweep_cpu_allocations(
                ivb.cpu, ivb.dram, wl, budget, engine=scalar_engine()
            )
            batch = sweep_cpu_allocations(
                ivb.cpu, ivb.dram, wl, budget, engine=batch_engine()
            )
            assert_sweeps_identical(scalar, batch)

    @pytest.mark.parametrize("name", list_gpu_workloads())
    def test_gpu_sweeps(self, xp, name):
        wl = gpu_workload(name)
        for cap in GPU_CAPS_FAST:
            scalar = sweep_gpu_allocations(xp, wl, cap, engine=scalar_engine())
            batch = sweep_gpu_allocations(xp, wl, cap, engine=batch_engine())
            assert_sweeps_identical(scalar, batch)
            assert np.array_equal(batch.mem_freqs_mhz, scalar.mem_freqs_mhz)
            assert np.array_equal(batch.performances, scalar.performances)

    def test_cpu_budget_curve(self, has, dgemm):
        budgets = [150.0, 200.0, 250.0]
        scalar = cpu_budget_curve(
            has.cpu, has.dram, dgemm, budgets, engine=scalar_engine()
        )
        batch = cpu_budget_curve(
            has.cpu, has.dram, dgemm, budgets, engine=batch_engine()
        )
        assert np.array_equal(batch.perf_max, scalar.perf_max)
        assert np.array_equal(batch.optimal_mem_w, scalar.optimal_mem_w)
        assert batch.saturation_budget_w == scalar.saturation_budget_w

    def test_gpu_budget_curve(self, tv, gpu_stream):
        caps = [150.0, 200.0]
        scalar = gpu_budget_curve(tv, gpu_stream, caps, engine=scalar_engine())
        batch = gpu_budget_curve(tv, gpu_stream, caps, engine=batch_engine())
        assert np.array_equal(batch.perf_max, scalar.perf_max)
        assert np.array_equal(batch.optimal_mem_w, scalar.optimal_mem_w)

    def test_scenarios_from_batch_results_match_scalar(self, ivb, stream):
        """Classification runs on batch-produced results, not re-derived."""
        allocations = allocation_grid(176.0, mem_min_w=16.0, proc_min_w=8.0)
        batch = execute_host_batch(
            ivb.cpu,
            ivb.dram,
            stream.phases,
            [a.proc_w for a in allocations],
            [a.mem_w for a in allocations],
        )
        for alloc, result in zip(allocations, batch):
            scalar = execute_on_host(
                ivb.cpu, ivb.dram, stream.phases, alloc.proc_w, alloc.mem_w
            )
            assert classify_cpu(result) == classify_cpu(scalar)

    def test_gpu_scenarios_from_batch_results(self, xp, minife):
        freqs = [float(f) for f in xp.mem.frequencies_mhz]
        batch = execute_gpu_batch(xp, minife.phases, 200.0, freqs)
        for freq, result in zip(freqs, batch):
            scalar = execute_on_gpu(xp, minife.phases, 200.0, freq)
            assert classify_gpu(result) == classify_gpu(scalar)


# ---------------------------------------------------------------------------
# hypothesis fuzz: synthetic platforms, budgets, grids
# ---------------------------------------------------------------------------

class TestFuzzedEquivalence:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        n_cores=st.integers(min_value=1, max_value=32),
        f_min=st.sampled_from([0.8, 1.2, 1.6]),
        f_span=st.sampled_from([0.0, 0.4, 1.2]),
        idle_w=st.sampled_from([10.0, 25.0, 40.0]),
        dyn_w=st.sampled_from([40.0, 90.0, 140.0]),
        duty_steps=st.integers(min_value=1, max_value=8),
        bg_w=st.sampled_from([8.0, 20.0]),
        access_w=st.sampled_from([30.0, 90.0]),
        level_steps=st.integers(min_value=1, max_value=32),
        budget=st.integers(min_value=20, max_value=80).map(lambda k: 4.0 * k),
        flops=st.sampled_from([0.0, 1e12, 5e13]),
        bytes_moved=st.sampled_from([0.0, 1e11, 8e12]),
    )
    def test_fuzzed_platforms(
        self,
        n_cores,
        f_min,
        f_span,
        idle_w,
        dyn_w,
        duty_steps,
        bg_w,
        access_w,
        level_steps,
        budget,
        flops,
        bytes_moved,
    ):
        if flops == 0.0 and bytes_moved == 0.0:
            flops = 1e12  # a phase must do some work
        cpu = CpuDomain(
            n_cores=n_cores,
            pstates=PStateTable(f_min, f_min + f_span),
            idle_power_w=idle_w,
            max_dynamic_w=dyn_w,
            duty_steps=duty_steps,
        )
        dram = DramDomain(
            background_w=bg_w,
            max_access_w=access_w,
            peak_bw_gbps=60.0,
            level_steps=level_steps,
        )
        phases = (
            Phase(
                name="fuzz",
                flops=flops,
                bytes_moved=bytes_moved,
                activity=0.9,
                stall_activity=0.35,
                compute_efficiency=0.7 if flops else 0.0,
                memory_efficiency=0.8 if bytes_moved else 0.0,
            ),
        )
        allocations = allocation_grid(
            budget, mem_min_w=float(bg_w), proc_min_w=float(idle_w) / 2.0
        )
        batch = execute_host_batch(
            cpu,
            dram,
            phases,
            [a.proc_w for a in allocations],
            [a.mem_w for a in allocations],
        )
        for alloc, result in zip(allocations, batch):
            scalar = execute_on_host(cpu, dram, phases, alloc.proc_w, alloc.mem_w)
            assert_results_identical(scalar, result)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        budget=st.integers(min_value=25, max_value=70).map(lambda k: 4.0 * k),
        step=st.sampled_from([2.0, 3.0, 4.0, 8.0, 12.0]),
        name=st.sampled_from(("dgemm", "stream", "sra")),
    )
    def test_fuzzed_grids_through_engine(self, ivb, budget, step, name):
        wl = cpu_workload(name)
        scalar = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, wl, budget, step_w=step, engine=scalar_engine()
        )
        batch = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, wl, budget, step_w=step, engine=batch_engine()
        )
        assert_sweeps_identical(scalar, batch)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        cap=st.integers(min_value=140, max_value=250).map(float),
        stride=st.integers(min_value=1, max_value=4),
        name=st.sampled_from(("sgemm", "minife")),
    )
    def test_fuzzed_gpu_caps_through_engine(self, xp, cap, stride, name):
        wl = gpu_workload(name)
        scalar = sweep_gpu_allocations(
            xp, wl, cap, freq_stride=stride, engine=scalar_engine()
        )
        batch = sweep_gpu_allocations(
            xp, wl, cap, freq_stride=stride, engine=batch_engine()
        )
        assert_sweeps_identical(scalar, batch)


# ---------------------------------------------------------------------------
# engine contract: cache fill, warm behaviour, escape hatches, crossover
# ---------------------------------------------------------------------------

class TestEngineContract:
    def test_batch_fills_memo_cache_point_by_point(self, ivb, stream):
        engine = batch_engine()
        first = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, engine=engine)
        stats = engine.stats
        assert stats.misses == len(first.points)
        assert stats.hits == 0
        assert stats.size == len(first.points)
        again = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, engine=engine)
        assert again.points == first.points
        warm = engine.stats
        assert warm.misses == stats.misses  # nothing re-executed
        assert warm.hits == stats.hits + len(first.points)

    def test_batch_and_scalar_share_cache_keys(self, ivb, sra):
        """A batch-warmed cache fully serves a scalar-path engine."""
        from repro.core.parallel import MemoCache

        shared = MemoCache(maxsize=512)
        sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 176.0,
            engine=SweepEngine(n_jobs=1, cache=shared, batch=True),
        )
        misses = shared.stats.misses
        sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 176.0,
            engine=SweepEngine(n_jobs=1, cache=shared, batch=False),
        )
        assert shared.stats.misses == misses

    def test_duplicate_allocations_execute_once(self, ivb, stream):
        engine = batch_engine()
        allocations = list(
            allocation_grid(208.0, mem_min_w=16.0, proc_min_w=8.0, step_w=8.0)
        )
        results = engine.map_host(ivb.cpu, ivb.dram, stream.phases, allocations * 3)
        assert engine.stats.misses == len(allocations)
        assert results[: len(allocations)] * 3 == results

    def test_partial_cache_hits_compose(self, ivb, dgemm):
        """A half-warm grid resolves misses in batch and hits from cache."""
        engine = batch_engine()
        allocations = list(
            allocation_grid(208.0, mem_min_w=16.0, proc_min_w=8.0, step_w=4.0)
        )
        half = allocations[::2]
        engine.map_host(ivb.cpu, ivb.dram, dgemm.phases, half)
        assert engine.stats.misses == len(half)
        full = engine.map_host(ivb.cpu, ivb.dram, dgemm.phases, allocations)
        assert engine.stats.misses == len(allocations)
        assert engine.stats.hits == len(half)
        for alloc, result in zip(allocations, full):
            assert result == execute_on_host(
                ivb.cpu, ivb.dram, dgemm.phases, alloc.proc_w, alloc.mem_w
            )

    def test_default_engine_uses_batch(self, ivb, sra):
        scalar = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 176.0, engine=scalar_engine()
        )
        with use_engine(SweepEngine()) as engine:
            assert engine.batch is True
            batch = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 176.0)
        assert_sweeps_identical(scalar, batch)

    def test_resolve_batch_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV_VAR, "0")
        assert resolve_batch(True) is True
        monkeypatch.setenv(BATCH_ENV_VAR, "1")
        assert resolve_batch(False) is False

    @pytest.mark.parametrize("value", ["0", "false", "No", "OFF"])
    def test_resolve_batch_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(BATCH_ENV_VAR, value)
        assert resolve_batch() is False
        assert SweepEngine(n_jobs=1).batch is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "weird"])
    def test_resolve_batch_env_enables(self, monkeypatch, value):
        monkeypatch.setenv(BATCH_ENV_VAR, value)
        assert resolve_batch() is True

    def test_resolve_batch_defaults_on(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV_VAR, raising=False)
        assert resolve_batch() is True
        assert SweepEngine(n_jobs=1).batch is True

    def test_crossover_default_and_validation(self):
        assert SweepEngine(n_jobs=1).serial_crossover == SERIAL_CROSSOVER
        assert SweepEngine(n_jobs=1, serial_crossover=0).serial_crossover == 0
        with pytest.raises(SweepError):
            SweepEngine(n_jobs=1, serial_crossover=-1)

    def test_small_grid_stays_serial_under_crossover(self, ivb, stream, monkeypatch):
        """Below the crossover, no pool is created even with n_jobs > 1."""
        import repro.core.parallel as parallel_mod

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("pool must not be created below the crossover")

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", boom)
        engine = SweepEngine(n_jobs=4, batch=False)
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, engine=engine)
        assert len(sweep.points) < engine.serial_crossover
        assert sweep.points == sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 208.0, engine=scalar_engine()
        ).points

    def test_large_grid_fans_out_past_crossover(self, ivb, stream, monkeypatch):
        """At/above the crossover the pool is used (observed via a probe)."""
        import repro.core.parallel as parallel_mod

        created = []
        real_pool = parallel_mod.ThreadPoolExecutor

        def probe(*args, **kwargs):
            created.append(True)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", probe)
        engine = SweepEngine(n_jobs=2, batch=False, serial_crossover=4)
        sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, engine=engine)
        assert created


# ---------------------------------------------------------------------------
# NaN/inf guards: a batch kernel must never poison a plateau pick
# ---------------------------------------------------------------------------

class TestNonFiniteGuards:
    @staticmethod
    def _poisoned_sweep(ivb, stream, value: float) -> AllocationSweep:
        sweep = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 176.0, engine=batch_engine()
        )
        points = list(sweep.points)
        points[len(points) // 2] = dataclasses.replace(
            points[len(points) // 2], performance=value
        )
        return dataclasses.replace(sweep, points=tuple(points))

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf")])
    def test_optimal_plateau_rejects_nonfinite(self, ivb, stream, value):
        poisoned = self._poisoned_sweep(ivb, stream, value)
        with pytest.raises(SweepError):
            optimal_plateau(poisoned.points)

    def test_best_point_rejects_nonfinite(self, ivb, stream):
        poisoned = self._poisoned_sweep(ivb, stream, float("nan"))
        with pytest.raises(SweepError):
            poisoned.best

    def test_plateau_on_batch_points_is_finite_and_valid(self, ivb, dgemm):
        sweep = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, dgemm, 208.0, engine=batch_engine()
        )
        lo, hi = optimal_plateau(sweep.points)
        assert 0 <= lo <= hi < len(sweep.points)
        assert all(math.isfinite(p.performance) for p in sweep.points)

    def test_batch_results_are_finite_across_registry(self, ivb):
        """No NaN/inf sneaks out of the vectorized arithmetic itself."""
        for name in list_cpu_workloads():
            wl = cpu_workload(name)
            allocations = allocation_grid(176.0, mem_min_w=16.0, proc_min_w=8.0)
            for result in execute_host_batch(
                ivb.cpu,
                ivb.dram,
                wl.phases,
                [a.proc_w for a in allocations],
                [a.mem_w for a in allocations],
            ):
                assert math.isfinite(result.elapsed_s)
                for phase in result.phases:
                    assert math.isfinite(phase.proc_power_w)
                    assert math.isfinite(phase.mem_power_w)
                    assert math.isfinite(phase.utilization)
                    assert math.isfinite(phase.mem_busy)
