"""RPL004 fixture: raw allocation construction bypassing the invariant."""


def make_raw(budget_w):
    payload = {"proc_w": budget_w / 2, "mem_w": budget_w / 2}  # line 5: RPL004
    pair = dict(cpu_w=10.0, mem_w=20.0)  # line 6: RPL004
    allocation = (10.0, 20.0)  # line 7: RPL004 (tuple to alloc-named target)
    return payload, pair, allocation


def fine(budget_w):
    shares = {"proc_frac": 0.5, "mem_frac": 0.5}  # no power keys: no finding
    bounds = (0.0, budget_w)  # target not allocation-named: no finding
    return shares, bounds
