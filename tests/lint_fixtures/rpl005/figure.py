"""RPL005 fixture: nondeterminism inside a figure module."""
# repro-lint: figure-module

import os
import time
from datetime import datetime

import numpy as np


def render(workload_names):
    for name in {"a", "b", "c"}:  # line 12: RPL005 (set-order iteration)
        _use(name)
    stamp = datetime.now()  # line 14: RPL005 (date read)
    started = time.time()  # line 15: RPL005 (wall-clock read)
    debug = os.environ.get("REPRO_DEBUG")  # line 16: RPL005 (environ read)
    noise = np.random.default_rng(0).random()  # line 17: RPL005 (raw RNG)
    ordered = [n for n in sorted(set(workload_names))]  # sorted: no finding
    return stamp, started, debug, noise, ordered


def _use(name):
    return name
