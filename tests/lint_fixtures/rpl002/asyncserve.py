"""RPL002 fixture: server-shared state guarded by asyncio locks."""
# shared-state

import asyncio

_SESSIONS = {}
_REPLIES = []
_STATE_LOCK = asyncio.Lock()


async def bad_register(key, value):
    _SESSIONS[key] = value  # line 12: RPL002 (unguarded store in async def)


async def bad_buffer(value):
    _REPLIES.append(value)  # line 16: RPL002 (unguarded mutating method)


async def good_register(key, value):
    async with _STATE_LOCK:
        _SESSIONS[key] = value  # guarded by `async with <lock>`: no finding


async def good_drain():
    async with _STATE_LOCK:
        while _REPLIES:
            _REPLIES.pop()  # guarded: no finding


async def good_local():
    replies = []
    replies.append("pong")  # local container: no finding
    return replies
