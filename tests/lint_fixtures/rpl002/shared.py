"""RPL002 fixture: cross-thread module state."""
# shared-state

import threading

_CACHE = {}
_RESULTS = []
_EPOCH = 0
_CACHE_LOCK = threading.Lock()


def bad_store(key, value):
    _CACHE[key] = value  # line 13: RPL002 (unguarded subscript store)


def bad_append(value):
    _RESULTS.append(value)  # line 17: RPL002 (unguarded mutating method)


def bad_bump():
    global _EPOCH
    _EPOCH += 1  # line 22: RPL002 (unguarded global rebind)


def good_store(key, value):
    with _CACHE_LOCK:
        _CACHE[key] = value  # guarded: no finding


def good_local():
    results = []
    results.append(1)  # local container: no finding
    return results
