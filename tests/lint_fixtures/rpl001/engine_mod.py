"""RPL001 fixture: a SweepEngine memoizing a scalar entry
(`work.compute`), a vectorized batch entry (`batchwork.run_batch`), and
an adaptive planner entry (`plannerwork.plan_axis`)."""

from batchwork import run_batch
from plannerwork import DiskSegment, plan_axis
from work import compute


class SweepEngine:
    """Minimal engine shape: the linter roots RPL001 at what it calls."""

    def execute(self, x):
        return compute(x)

    def execute_batch(self, values):
        return run_batch(values)

    def execute_plan(self, n):
        return plan_axis(n, DiskSegment())
