"""RPL001 fixture: a SweepEngine memoizing both a scalar entry
(`work.compute`) and a vectorized batch entry (`batchwork.run_batch`)."""

from batchwork import run_batch
from work import compute


class SweepEngine:
    """Minimal engine shape: the linter roots RPL001 at what it calls."""

    def execute(self, x):
        return compute(x)

    def execute_batch(self, values):
        return run_batch(values)
