"""RPL001 fixture: a SweepEngine whose memoized entry is `work.compute`."""

from work import compute


class SweepEngine:
    """Minimal engine shape: the linter roots RPL001 at what it calls."""

    def execute(self, x):
        return compute(x)
