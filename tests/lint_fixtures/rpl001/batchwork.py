"""RPL001 fixture: an impure batch kernel the engine dispatches grids to."""

import os


def run_batch(values):
    mode = os.getenv("REPRO_FIXTURE_MODE")  # line 7: RPL001 (environment read)
    print("batch of", len(values))  # line 8: RPL001 (console I/O)
    return [v * 2.0 for v in values if mode is None or v >= 0.0]
