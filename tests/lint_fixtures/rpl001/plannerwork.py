"""RPL001 fixture: disk I/O on vs. off the memoized planner path.

`plan_axis` is memoized through the engine, so the `open()` inside it
must fire.  `DiskSegment.append` also does disk I/O, but it is only
reachable through an instance attribute (`self._cache.append`), which
the name-based call graph never traverses — mirroring how the real
`DiskCache` keeps persistence off the pure planning path.
"""


class DiskSegment:
    """Cache writer: I/O lives behind instance methods, off the graph."""

    def append(self, record):
        with open("segment.jsonl", "a") as fh:  # silent: unreachable
            fh.write(record)


def plan_axis(n, cache):
    best = 0.0
    with open("trace.log", "a") as fh:  # line 21: RPL001 (disk I/O)
        fh.write(str(n))
    for i in range(n):
        best = max(best, float(i))
        cache.append(str(best))  # attribute call: graph does not descend
    return best
