"""RPL001 fixture: impure functions reachable from the engine entry."""

import os
import time

import numpy as np

_COUNTER = 0


def helper(x):
    rng = np.random.default_rng(0)  # line 12: RPL001 (unseeded-RNG door bypass)
    return x + rng.random()


def compute(x):
    stamp = time.time()  # line 17: RPL001 (wall-clock read)
    print("computing", x)  # line 18: RPL001 (console I/O)
    mode = os.environ.get("REPRO_MODE")  # line 19: RPL001 (environment read)
    global _COUNTER  # line 20: RPL001 (module-global mutation)
    _COUNTER += 1
    return helper(x) + stamp + (1 if mode else 0)


def unreachable_is_fine():
    # Not reachable from the engine: timers here are legitimate.
    return time.perf_counter()
