"""RPL003 fixture: exact float equality on power/perf quantities."""


def compare(proc_w, budget_w, perf_max, label):
    if proc_w == budget_w:  # line 5: RPL003 (watt == watt)
        return True
    if perf_max != 0.0:  # line 7: RPL003 (perf != literal)
        return False
    if proc_w == 0.0:  # repro-lint: disable=RPL003 -- suppressed zero sentinel
        return True
    if label == "baseline":  # string compare: no finding
        return False
    return proc_w < budget_w  # inequality: no finding
