"""Kernel → execution-model characterization bridge."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads import WorkloadClass, cpu_workload
from repro.workloads.characterize import (
    PATTERN_DEFAULTS,
    characterize_kernel,
    kernel_for_workload,
)
from repro.workloads.kernels import run_kernel


class TestCharacterizeKernel:
    def test_builds_phase_from_report(self):
        report = run_kernel("stream")
        phase = characterize_kernel(report, WorkloadClass.MEMORY_INTENSIVE)
        assert phase.name == "stream"
        assert phase.flops == report.flops
        defaults = PATTERN_DEFAULTS[WorkloadClass.MEMORY_INTENSIVE]
        assert phase.activity == defaults.activity

    def test_scale_applied_to_volumes_only(self):
        report = run_kernel("dgemm")
        phase = characterize_kernel(report, WorkloadClass.COMPUTE_INTENSIVE, scale=100.0)
        assert phase.flops == pytest.approx(report.flops * 100.0)
        assert phase.intensity == pytest.approx(report.intensity)

    def test_characterized_phase_is_executable(self, ivb):
        from repro.perfmodel.executor import execute_on_host

        report = run_kernel("cg")
        phase = characterize_kernel(report, WorkloadClass.RANDOM_ACCESS, scale=1e4)
        result = execute_on_host(ivb.cpu, ivb.dram, (phase,), 1000.0, 1000.0)
        assert result.elapsed_s > 0

    def test_all_classes_have_defaults(self):
        assert set(PATTERN_DEFAULTS) == set(WorkloadClass)


class TestKernelForWorkload:
    def test_known(self):
        assert kernel_for_workload(cpu_workload("dgemm")) == "dgemm"

    def test_unknown(self):
        with pytest.raises(UnknownWorkloadError):
            kernel_for_workload(cpu_workload("bt"))
