"""Multi-node (weak-scaled) jobs in the batch scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.platforms import ivybridge_node
from repro.sched import Cluster, Job, JobState, PowerBoundedScheduler
from repro.sched.rebalance import RebalancingScheduler
from repro.workloads import cpu_workload


def make_sched(n_nodes=4, bound=900.0, cls=PowerBoundedScheduler):
    cluster = Cluster(
        node_factory=ivybridge_node, n_nodes=n_nodes, global_bound_w=bound
    )
    return cls(cluster)


class TestMultiNodeJobs:
    def test_n_nodes_validated(self):
        with pytest.raises(ConfigurationError):
            Job(0, cpu_workload("stream"), 200.0, n_nodes=0)

    def test_wide_job_takes_all_its_nodes(self):
        sched = make_sched()
        sched.submit(Job(0, cpu_workload("stream"), 220.0, n_nodes=3))
        stats = sched.run()
        assert stats.n_completed == 1
        record = sched.records[0]
        assert len(record.slot_indices) == 3
        # Throughput aggregates across nodes (weak scaling).
        single = make_sched()
        single.submit(Job(0, cpu_workload("stream"), 220.0, n_nodes=1))
        single.run()
        assert record.performance == pytest.approx(
            3 * single.records[0].performance
        )

    def test_power_charged_per_node(self):
        sched = make_sched(bound=900.0)
        sched.submit(Job(0, cpu_workload("stream"), 220.0, n_nodes=3))
        stats = sched.run()
        record = sched.records[0]
        # Peak charge is k x per-node grant.
        assert stats.peak_charged_w == pytest.approx(3 * record.granted_budget_w)

    def test_wide_job_waits_for_enough_nodes(self):
        sched = make_sched(n_nodes=2, bound=900.0)
        sched.submit(Job(0, cpu_workload("dgemm"), 240.0, n_nodes=1))
        sched.submit(Job(1, cpu_workload("stream"), 220.0, n_nodes=2))
        sched.run()
        r0, r1 = sched.records[0], sched.records[1]
        assert r1.start_time_s >= r0.finish_time_s - 1e-9

    def test_too_wide_per_node_budget_rejected(self):
        # Global bound split across 4 nodes leaves each below threshold.
        sched = make_sched(n_nodes=4, bound=250.0)
        sched.submit(Job(0, cpu_workload("dgemm"), 240.0, n_nodes=4))
        stats = sched.run()
        assert stats.n_rejected == 1
        assert "per-node budget" in sched.records[0].reject_reason

    def test_all_nodes_released_on_completion(self):
        sched = make_sched()
        sched.submit(Job(0, cpu_workload("stream"), 220.0, n_nodes=4))
        sched.submit(Job(1, cpu_workload("mg"), 220.0, n_nodes=4, submit_time_s=0.5))
        stats = sched.run()
        assert stats.n_completed == 2
        assert all(not s.busy for s in sched.cluster.slots)
        assert sched.cluster.charged_w == 0.0

    def test_surplus_reclaim_scales_with_width(self):
        sched = make_sched(bound=1200.0)
        sched.submit(Job(0, cpu_workload("stream"), 300.0, n_nodes=2))
        sched.run()
        single = make_sched(bound=1200.0)
        single.submit(Job(0, cpu_workload("stream"), 300.0, n_nodes=1))
        single.run()
        assert sched.reclaimed_w_total == pytest.approx(
            2 * single.reclaimed_w_total
        )

    def test_rebalancer_handles_mixed_widths(self):
        sched = make_sched(n_nodes=3, bound=500.0, cls=RebalancingScheduler)
        sched.submit(Job(0, cpu_workload("stream").scaled(0.3), 220.0, n_nodes=2))
        sched.submit(Job(1, cpu_workload("dgemm"), 240.0, n_nodes=1))
        stats = sched.run()
        assert stats.n_completed == 2
        assert stats.peak_charged_w <= 500.0 + 1e-9
        assert all(
            r.state is JobState.COMPLETED for r in sched.records.values()
        )
