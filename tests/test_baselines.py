"""Baseline allocation strategies."""

import pytest

from repro.core.baselines import (
    cpu_first_allocation,
    demand_proportional_allocation,
    interpolation_allocation,
    memory_first_allocation,
    oracle_allocation,
    uniform_allocation,
)
from repro.core.critical import CpuCriticalPowers
from repro.core.profiler import profile_cpu_workload
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import SweepError
from repro.perfmodel.executor import execute_on_host


@pytest.fixture
def critical():
    return CpuCriticalPowers(
        cpu_l1=112.0, cpu_l2=66.0, cpu_l3=50.0, cpu_l4=48.0,
        mem_l1=116.0, mem_l2=30.0, mem_l3=66.0,
    )


class TestMemoryFirst:
    def test_memory_gets_demand_when_affordable(self, critical):
        a = memory_first_allocation(critical, 220.0)
        assert a.mem_w == pytest.approx(116.0)
        assert a.proc_w == pytest.approx(104.0)

    def test_cpu_keeps_floor_under_tight_budget(self, critical):
        a = memory_first_allocation(critical, 150.0)
        assert a.mem_w == pytest.approx(150.0 - 48.0)
        assert a.proc_w == pytest.approx(48.0)

    def test_memory_never_below_its_floor(self, critical):
        a = memory_first_allocation(critical, 110.0)
        assert a.mem_w >= critical.mem_l3 - 1e-9

    def test_budget_never_exceeded(self, critical):
        for budget in (120.0, 180.0, 260.0):
            a = memory_first_allocation(critical, budget)
            assert a.total_w <= budget + 1e-9


class TestCpuFirstAndNaive:
    def test_cpu_first_mirrors(self, critical):
        a = cpu_first_allocation(critical, 220.0)
        assert a.proc_w == pytest.approx(112.0)
        assert a.mem_w == pytest.approx(108.0)

    def test_uniform(self):
        a = uniform_allocation(200.0)
        assert a.proc_w == a.mem_w == 100.0

    def test_demand_proportional(self, critical):
        a = demand_proportional_allocation(critical, 200.0)
        frac = 112.0 / 228.0
        assert a.proc_w == pytest.approx(frac * 200.0)
        assert a.total_w == pytest.approx(200.0)


class TestOracle:
    def test_matches_sweep_best(self, ivb, sra):
        a = oracle_allocation(ivb.cpu, ivb.dram, sra, 208.0, step_w=8.0)
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 208.0, step_w=8.0)
        assert a == sweep.best.allocation

    def test_finer_stepping_never_worse(self, ivb, stream):
        def perf_of(step):
            a = oracle_allocation(ivb.cpu, ivb.dram, stream, 200.0, step_w=step)
            r = execute_on_host(ivb.cpu, ivb.dram, stream.phases, a.proc_w, a.mem_w)
            return stream.performance(r)

        assert perf_of(2.0) >= perf_of(16.0) - 1e-9


class TestInterpolation:
    def test_within_10pct_of_oracle_for_smooth_workload(self, ivb, stream):
        budget = 200.0
        a = interpolation_allocation(ivb.cpu, ivb.dram, stream, budget, n_samples=7)
        r = execute_on_host(ivb.cpu, ivb.dram, stream.phases, a.proc_w, a.mem_w)
        best = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, budget, step_w=2.0).perf_max
        assert stream.performance(r) >= 0.80 * best

    def test_budget_preserved(self, ivb, stream):
        a = interpolation_allocation(ivb.cpu, ivb.dram, stream, 180.0)
        assert a.total_w == pytest.approx(180.0)

    def test_too_few_samples_rejected(self, ivb, stream):
        with pytest.raises(SweepError):
            interpolation_allocation(ivb.cpu, ivb.dram, stream, 180.0, n_samples=2)

    def test_tiny_budget_rejected(self, ivb, stream):
        with pytest.raises(SweepError):
            interpolation_allocation(
                ivb.cpu, ivb.dram, stream, 20.0, mem_min_w=16.0, proc_min_w=8.0
            )


class TestRelativeQuality:
    def test_memory_first_conservative_at_small_budgets(self, ivb, sra):
        # Memory-first starves the CPU at small budgets (paper Figure 9);
        # the oracle must beat it clearly there.
        critical = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        budget = 150.0
        mf = memory_first_allocation(critical, budget)
        r_mf = execute_on_host(ivb.cpu, ivb.dram, sra.phases, mf.proc_w, mf.mem_w)
        best = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, budget, step_w=4.0).perf_max
        assert sra.performance(r_mf) < 0.8 * best
