"""Phase-change detection from power traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.phasedetect import CusumDetector, detect_phase_changes
from repro.perfmodel.power_trace import PowerTrace, sample_power_trace
from repro.workloads import cpu_workload


def synthetic_trace(levels, samples_per_level=50, noise=0.5, seed=3, dt=0.01):
    rng = np.random.default_rng(seed)
    sig = np.concatenate(
        [level + noise * rng.standard_normal(samples_per_level) for level in levels]
    )
    zeros = np.zeros_like(sig)
    return PowerTrace(dt_s=dt, proc_w=sig, mem_w=zeros, board_w=zeros)


class TestCusumDetector:
    def test_flat_signal_no_detection(self):
        det = CusumDetector()
        assert all(det.update(100.0) is None for _ in range(200))

    def test_step_up_detected(self):
        det = CusumDetector()
        for _ in range(20):
            det.update(100.0)
        verdicts = [det.update(120.0) for _ in range(20)]
        assert "up" in verdicts

    def test_step_down_detected(self):
        det = CusumDetector()
        for _ in range(20):
            det.update(100.0)
        verdicts = [det.update(80.0) for _ in range(20)]
        assert "down" in verdicts

    def test_small_wobble_ignored(self):
        det = CusumDetector(slack_w=3.0)
        for _ in range(20):
            det.update(100.0)
        verdicts = [det.update(101.5) for _ in range(100)]
        assert all(v is None for v in verdicts)

    def test_baseline_reestimated_after_detection(self):
        det = CusumDetector(warmup_samples=3)
        for _ in range(10):
            det.update(100.0)
        for _ in range(20):
            if det.update(130.0):
                break
        for _ in range(5):
            det.update(130.0)
        assert det.baseline_w == pytest.approx(130.0, abs=2.0)

    def test_validation(self):
        with pytest.raises(Exception):
            CusumDetector(slack_w=0.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(warmup_samples=0)


class TestDetectPhaseChanges:
    def test_synthetic_two_levels(self):
        trace = synthetic_trace([100.0, 130.0])
        changes = detect_phase_changes(trace)
        assert len(changes) == 1
        change = changes[0]
        assert change.direction == "up"
        assert change.baseline_w == pytest.approx(100.0, abs=2.0)
        assert change.new_level_w == pytest.approx(130.0, abs=2.0)
        assert change.magnitude_w == pytest.approx(30.0, abs=4.0)
        # Located near the actual boundary (sample 50).
        assert 45 <= change.sample_index <= 60

    def test_synthetic_three_levels(self):
        trace = synthetic_trace([100.0, 130.0, 90.0])
        changes = detect_phase_changes(trace)
        assert [c.direction for c in changes] == ["up", "down"]

    def test_flat_trace_clean(self):
        trace = synthetic_trace([100.0])
        assert detect_phase_changes(trace) == []

    def test_bad_channel(self):
        trace = synthetic_trace([100.0])
        with pytest.raises(ConfigurationError):
            detect_phase_changes(trace, channel="gpu")

    def test_real_multiphase_workload(self, ivb):
        # BT's solve and rhs phases draw visibly different CPU power; the
        # detector must find the boundary without instrumentation.
        bt = cpu_workload("bt")
        result = execute_on_host(ivb.cpu, ivb.dram, bt.phases, 1000.0, 1000.0)
        trace = sample_power_trace(result, dt_s=0.02)
        changes = detect_phase_changes(trace, slack_w=1.0, threshold_ws=6.0)
        assert len(changes) >= 1
        # The detected boundary is near the true phase boundary.
        true_boundary = result.phases[0].time_s
        assert min(abs(c.time_s - true_boundary) for c in changes) < 0.5

    def test_single_phase_workload_clean(self, ivb, stream):
        result = execute_on_host(ivb.cpu, ivb.dram, stream.phases, 1000.0, 1000.0)
        trace = sample_power_trace(result, dt_s=0.02)
        assert detect_phase_changes(trace) == []
