"""ExecutionResult aggregates."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.component import CappingMechanism
from repro.perfmodel.metrics import ExecutionResult, PhaseResult


def phase_result(name="p", time_s=1.0, proc_w=100.0, mem_w=50.0, board_w=0.0,
                 flops=1e9, bytes_moved=1e9, proc_mech=CappingMechanism.NONE,
                 mem_mech=CappingMechanism.NONE, util=0.5, busy=0.5):
    return PhaseResult(
        name=name, time_s=time_s, t_compute_s=util * time_s,
        t_memory_s=busy * time_s, utilization=util, mem_busy=busy,
        proc_freq_ghz=2.5, proc_duty=1.0, mem_throttle=1.0,
        proc_mechanism=proc_mech, mem_mechanism=mem_mech,
        proc_power_w=proc_w, mem_power_w=mem_w, board_power_w=board_w,
        flops=flops, bytes_moved=bytes_moved,
    )


class TestPhaseResult:
    def test_total_power(self):
        p = phase_result(proc_w=100.0, mem_w=50.0, board_w=10.0)
        assert p.total_power_w == 160.0

    def test_energy(self):
        p = phase_result(time_s=2.0, proc_w=100.0, mem_w=50.0)
        assert p.energy_j == pytest.approx(300.0)

    def test_rates(self):
        p = phase_result(time_s=2.0, flops=4e9, bytes_moved=2e9)
        assert p.achieved_flops_rate == pytest.approx(2e9)
        assert p.achieved_bytes_rate == pytest.approx(1e9)


class TestExecutionResult:
    def test_requires_phases(self):
        with pytest.raises(ConfigurationError):
            ExecutionResult((), proc_cap_w=None, mem_cap_w=None)

    def test_time_weighted_power(self):
        r = ExecutionResult(
            (
                phase_result(time_s=1.0, proc_w=100.0),
                phase_result(time_s=3.0, proc_w=200.0),
            ),
            proc_cap_w=None,
            mem_cap_w=None,
        )
        assert r.proc_power_w == pytest.approx((100 + 3 * 200) / 4)

    def test_totals(self):
        r = ExecutionResult(
            (phase_result(flops=1e9), phase_result(flops=3e9)),
            proc_cap_w=None, mem_cap_w=None,
        )
        assert r.total_flops == pytest.approx(4e9)
        assert r.elapsed_s == pytest.approx(2.0)
        assert r.flops_rate == pytest.approx(2e9)

    def test_dominant_mechanism_by_time(self):
        r = ExecutionResult(
            (
                phase_result(time_s=1.0, proc_mech=CappingMechanism.NONE),
                phase_result(time_s=5.0, proc_mech=CappingMechanism.DVFS),
            ),
            proc_cap_w=None, mem_cap_w=None,
        )
        assert r.proc_mechanism is CappingMechanism.DVFS

    def test_respects_bound_is_power_based(self):
        # A floored domain violates the bound only if it actually draws
        # more than its cap.
        over = ExecutionResult(
            (phase_result(proc_w=100.0, proc_mech=CappingMechanism.FLOOR),),
            proc_cap_w=80.0, mem_cap_w=None,
        )
        assert not over.respects_bound
        under = ExecutionResult(
            (phase_result(mem_w=30.0, mem_mech=CappingMechanism.FLOOR),),
            proc_cap_w=None, mem_cap_w=40.0,
        )
        assert under.respects_bound

    def test_respects_bound_gpu_checks_board_total(self):
        r = ExecutionResult(
            (phase_result(proc_w=150.0, mem_w=60.0, board_w=20.0),),
            proc_cap_w=220.0, mem_cap_w=70.0, device="gpu",
        )
        assert not r.respects_bound  # 230 W board > 220 W cap
        r2 = ExecutionResult(
            (phase_result(proc_w=150.0, mem_w=60.0, board_w=20.0),),
            proc_cap_w=240.0, mem_cap_w=70.0, device="gpu",
        )
        assert r2.respects_bound

    def test_uncapped_always_respects(self):
        r = ExecutionResult(
            (phase_result(proc_mech=CappingMechanism.FLOOR),),
            proc_cap_w=None, mem_cap_w=None,
        )
        assert r.respects_bound

    def test_energy_sums_domains(self):
        r = ExecutionResult(
            (phase_result(time_s=2.0, proc_w=100.0, mem_w=40.0, board_w=10.0),),
            proc_cap_w=None, mem_cap_w=None,
        )
        assert r.proc_energy_j == pytest.approx(200.0)
        assert r.mem_energy_j == pytest.approx(80.0)
        assert r.energy_j == pytest.approx(300.0)
