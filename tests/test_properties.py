"""Property-based tests (hypothesis) on core invariants.

Each property is an invariant the paper's framework depends on; hypothesis
drives them across arbitrary-but-valid workloads, caps and budgets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coord import coord_cpu
from repro.core.coord_gpu import coord_gpu
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.core.scenario import GPU_SCENARIOS, Scenario, classify_cpu, classify_gpu
from repro.hardware.component import CappingMechanism
from repro.hardware.platforms import ivybridge_node, titan_xp_card
from repro.hardware.rapl import ENERGY_UNIT_J, MsrEnergyCounter
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.perfmodel.phase import Phase

# Module-scoped models: domains are immutable, reuse is safe.
NODE = ivybridge_node()
CARD = titan_xp_card()

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

phases = st.builds(
    Phase,
    name=st.just("hyp"),
    flops=st.floats(1e6, 1e13),
    bytes_moved=st.floats(1e6, 1e13),
    activity=st.floats(0.05, 1.0),
    stall_activity=st.floats(0.0, 0.6),
    compute_efficiency=st.floats(1e-4, 1.0),
    memory_efficiency=st.floats(0.02, 1.0),
)

cpu_caps = st.floats(0.0, 400.0)
mem_caps = st.floats(0.0, 250.0)


@st.composite
def cpu_criticals(draw):
    """Profiles with the orderings real profiling always produces.

    ``mem_l2 <= mem_l1`` holds physically: DRAM draws less when the CPU is
    floored (fewer requests) than at full speed.
    """
    l4 = draw(st.floats(20.0, 60.0))
    l3 = l4 + draw(st.floats(0.0, 10.0))
    l2 = l3 + draw(st.floats(0.0, 40.0))
    l1 = l2 + draw(st.floats(0.0, 120.0))
    m3 = draw(st.floats(10.0, 80.0))
    m1 = draw(st.floats(5.0, 140.0))
    m2 = m1 * draw(st.floats(0.1, 1.0))
    return CpuCriticalPowers(
        cpu_l1=l1, cpu_l2=l2, cpu_l3=l3, cpu_l4=l4,
        mem_l1=m1, mem_l2=m2, mem_l3=m3,
    )


@st.composite
def gpu_criticals(draw):
    """Profiles with the orderings real GPU profiling always produces.

    ``tot_min >= mem_max`` holds physically: even the minimum total
    includes board static power and the SM floor on top of memory.
    """
    m_min = draw(st.floats(10.0, 50.0))
    m_max = m_min + draw(st.floats(0.0, 40.0))
    t_min = m_max + draw(st.floats(10.0, 120.0))
    t_ref = t_min + draw(st.floats(0.0, 80.0))
    t_max = t_ref + draw(st.floats(0.0, 120.0))
    return GpuCriticalPowers(
        tot_max=t_max, tot_ref=t_ref, tot_min=t_min, mem_min=m_min, mem_max=m_max
    )


# ---------------------------------------------------------------------------
# executor invariants
# ---------------------------------------------------------------------------


class TestExecutorProperties:
    @settings(max_examples=60, deadline=None)
    @given(phase=phases, cpu_cap=cpu_caps, mem_cap=mem_caps)
    def test_caps_respected_unless_floored(self, phase, cpu_cap, mem_cap):
        r = execute_on_host(NODE.cpu, NODE.dram, (phase,), cpu_cap, mem_cap)
        ph = r.phases[0]
        if ph.proc_mechanism.respects_cap:
            assert ph.proc_power_w <= cpu_cap + 1e-6
        if ph.mem_mechanism.respects_cap:
            assert ph.mem_power_w <= mem_cap + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(phase=phases, cpu_cap=cpu_caps, mem_cap=mem_caps)
    def test_times_and_powers_sane(self, phase, cpu_cap, mem_cap):
        r = execute_on_host(NODE.cpu, NODE.dram, (phase,), cpu_cap, mem_cap)
        ph = r.phases[0]
        assert ph.time_s > 0
        assert 0.0 <= ph.utilization <= 1.0
        assert 0.0 <= ph.mem_busy <= 1.0
        assert ph.proc_power_w >= NODE.cpu.idle_power_w - 1e-9
        assert ph.mem_power_w >= NODE.dram.background_w - 1e-9
        assert ph.proc_power_w <= NODE.cpu.max_power_w + 1e-9
        assert ph.mem_power_w <= NODE.dram.max_power_w + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(phase=phases, mem_cap=st.floats(30.0, 250.0))
    def test_perf_monotone_in_cpu_cap(self, phase, mem_cap):
        rates = [
            execute_on_host(NODE.cpu, NODE.dram, (phase,), c, mem_cap).flops_rate
            for c in (60.0, 120.0, 200.0)
        ]
        assert rates[0] <= rates[1] + 1e-6 and rates[1] <= rates[2] + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(phase=phases, cpu_cap=st.floats(50.0, 400.0))
    def test_perf_monotone_in_mem_cap(self, phase, cpu_cap):
        # More memory power is NOT unconditionally better: a faster memory
        # system reduces stalls, which raises effective CPU activity, and a
        # power-starved processor must then throttle harder — end-to-end
        # performance can legitimately drop (the cross-component coupling
        # the paper's coordinator exists to manage).  The monotone claims
        # that do hold: memory service time never increases with the memory
        # cap, and flops rate is monotone whenever the processor stays
        # power-unconstrained across the sweep.
        results = [
            execute_on_host(NODE.cpu, NODE.dram, (phase,), cpu_cap, m)
            for m in (50.0, 90.0, 140.0)
        ]
        t_mem = [r.phases[0].t_memory_s for r in results]
        assert t_mem[0] >= t_mem[1] - 1e-12 and t_mem[1] >= t_mem[2] - 1e-12
        if all(
            r.phases[0].proc_mechanism is CappingMechanism.NONE for r in results
        ):
            rates = [r.flops_rate for r in results]
            assert rates[0] <= rates[1] + 1e-6 and rates[1] <= rates[2] + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(phase=phases, cpu_cap=cpu_caps, mem_cap=mem_caps)
    def test_classification_total(self, phase, cpu_cap, mem_cap):
        r = execute_on_host(NODE.cpu, NODE.dram, (phase,), cpu_cap, mem_cap)
        assert classify_cpu(r) in Scenario

    @settings(max_examples=40, deadline=None)
    @given(phase=phases, cap=st.floats(125.0, 300.0), ratio=st.floats(0.0, 1.0))
    def test_gpu_cap_respected(self, phase, cap, ratio):
        freq = CARD.mem.min_mhz + ratio * (CARD.mem.nominal_mhz - CARD.mem.min_mhz)
        r = execute_on_gpu(CARD, (phase,), cap, freq)
        if r.respects_bound:
            assert r.total_power_w <= cap + 1e-6
        assert classify_gpu(r) in GPU_SCENARIOS


# ---------------------------------------------------------------------------
# COORD invariants
# ---------------------------------------------------------------------------


class TestCoordProperties:
    @settings(max_examples=120, deadline=None)
    @given(critical=cpu_criticals(), budget=st.floats(1.0, 500.0))
    def test_accepted_allocations_respect_budget(self, critical, budget):
        d = coord_cpu(critical, budget)
        if d.accepted:
            assert d.allocation.total_w <= budget + 1e-6
            assert d.allocation.proc_w >= 0 and d.allocation.mem_w >= 0

    @settings(max_examples=120, deadline=None)
    @given(critical=cpu_criticals(), budget=st.floats(1.0, 500.0))
    def test_rejection_iff_below_threshold(self, critical, budget):
        d = coord_cpu(critical, budget)
        assert d.accepted == (budget >= critical.productive_threshold_w)

    @settings(max_examples=120, deadline=None)
    @given(critical=cpu_criticals(), budget=st.floats(1.0, 500.0))
    def test_surplus_accounting(self, critical, budget):
        d = coord_cpu(critical, budget)
        if d.surplus_w > 0:
            assert d.allocation.total_w + d.surplus_w == pytest.approx(budget)
            assert d.allocation.proc_w == pytest.approx(critical.cpu_l1)
            assert d.allocation.mem_w == pytest.approx(critical.mem_l1)

    @settings(max_examples=100, deadline=None)
    @given(critical=cpu_criticals(), budget=st.floats(1.0, 500.0))
    def test_memory_priority_in_case_b(self, critical, budget):
        d = coord_cpu(critical, budget)
        if (
            d.accepted
            and critical.cpu_l2 + critical.mem_l1
            <= budget
            < critical.cpu_l1 + critical.mem_l1
        ):
            assert d.allocation.mem_w == pytest.approx(critical.mem_l1)

    @settings(max_examples=120, deadline=None)
    @given(
        critical=gpu_criticals(),
        budget=st.floats(50.0, 400.0),
        gamma=st.floats(0.0, 1.0),
    )
    def test_gpu_allocation_within_budget_and_range(self, critical, budget, gamma):
        d = coord_gpu(critical, budget, hardware_max_w=300.0, gamma=gamma)
        assert d.allocation.total_w <= budget + 1e-6
        assert critical.mem_min - 1e-9 <= d.allocation.mem_w <= critical.mem_max + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(critical=cpu_criticals(), budget=st.floats(1.0, 500.0))
    def test_monotone_memory_share(self, critical, budget):
        # Growing the budget never shrinks memory's share (memory is the
        # priority component in Algorithm 1).  The processor share is NOT
        # strictly monotone: crossing from case C into case B pins memory
        # at L1m and can trim the CPU by up to its case-C bonus, so only
        # that bounded dip is tolerated.
        d1 = coord_cpu(critical, budget)
        d2 = coord_cpu(critical, budget + 20.0)
        if d1.accepted and d2.accepted:
            assert d2.allocation.mem_w >= d1.allocation.mem_w - 1e-6
            case_c_bonus = max(0.0, critical.mem_l1 - critical.mem_l2)
            assert d2.allocation.proc_w >= d1.allocation.proc_w - case_c_bonus - 1e-6


# ---------------------------------------------------------------------------
# counter invariants
# ---------------------------------------------------------------------------


class TestCounterProperties:
    @settings(max_examples=60, deadline=None)
    @given(chunks=st.lists(st.floats(0.0, 60_000.0), min_size=1, max_size=20))
    def test_delta_reconstructs_total_energy(self, chunks):
        # As long as < 2^16 J (= one full register wrap) pass between
        # reads, deltas reconstruct sums; a full wrap aliases to zero,
        # which is why meters must poll faster than the wrap period.
        counter = MsrEnergyCounter()
        total = 0.0
        prev = counter.read_raw()
        for chunk in chunks:
            counter.accumulate(chunk)
            now = counter.read_raw()
            total += MsrEnergyCounter.delta_joules(prev, now)
            prev = now
        assert total == pytest.approx(sum(chunks), abs=len(chunks) * ENERGY_UNIT_J)


# ---------------------------------------------------------------------------
# sweep invariants
# ---------------------------------------------------------------------------


class TestSweepProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), budget=st.floats(120.0, 280.0))
    def test_random_workload_sweep_invariants(self, seed, budget):
        from repro.core.sweep import sweep_cpu_allocations
        from repro.workloads.synthetic import random_workload

        wl = random_workload(seed)
        sweep = sweep_cpu_allocations(NODE.cpu, NODE.dram, wl, budget, step_w=16.0)
        perfs = sweep.performances
        assert np.all(perfs > 0)
        assert sweep.best.performance >= sweep.worst.performance
        assert all(p.allocation.total_w == pytest.approx(budget) for p in sweep.points)
