"""Haswell (CPU Platform II) coverage across the full CPU suite.

The characterizations are derived against the IvyBridge reference; these
tests check they transfer to the second platform the way the paper's
measurements do.
"""

import pytest

from repro.core.coord import coord_cpu
from repro.core.profiler import profile_cpu_workload
from repro.core.scenario import Scenario
from repro.core.sweep import sweep_cpu_allocations
from repro.perfmodel.executor import execute_on_host
from repro.workloads import cpu_workload, list_cpu_workloads


class TestSuiteOnHaswell:
    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_executes_and_respects_caps(self, has, name):
        wl = cpu_workload(name)
        r = execute_on_host(has.cpu, has.dram, wl.phases, 140.0, 70.0)
        if r.respects_bound:
            assert r.proc_power_w <= 140.0 + 1e-6
            assert r.mem_power_w <= 70.0 + 1e-6
        assert wl.performance(r) > 0

    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_profiling_orderings_hold(self, has, name):
        c = profile_cpu_workload(has.cpu, has.dram, cpu_workload(name))
        assert c.cpu_l1 >= c.cpu_l2 >= c.cpu_l3 >= c.cpu_l4 > 0
        assert c.cpu_l4 == pytest.approx(has.cpu.floor_power_w)

    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_coord_accuracy_at_large_cap(self, has, name):
        wl = cpu_workload(name)
        critical = profile_cpu_workload(has.cpu, has.dram, wl)
        budget = 230.0
        decision = coord_cpu(critical, budget)
        assert decision.accepted
        r = execute_on_host(
            has.cpu, has.dram, wl.phases,
            decision.allocation.proc_w, decision.allocation.mem_w,
        )
        best = sweep_cpu_allocations(has.cpu, has.dram, wl, budget, step_w=4.0).perf_max
        assert wl.performance(r) >= 0.88 * best, name

    def test_six_categories_appear_on_haswell(self, has, sra):
        sweep = sweep_cpu_allocations(has.cpu, has.dram, sra, 210.0, step_w=4.0)
        cats = set(sweep.scenarios)
        # Haswell's smaller DRAM envelope shifts spans, but the taxonomy
        # persists (Figure 8's "universal patterns").
        assert {Scenario.II, Scenario.III, Scenario.IV, Scenario.VI} <= cats

    @pytest.mark.parametrize("name", ["stream", "mg", "dgemm", "sra"])
    def test_haswell_outperforms_ivybridge_per_budget(self, has, ivb, name):
        wl = cpu_workload(name)
        for budget in (140.0, 200.0):
            s_h = sweep_cpu_allocations(has.cpu, has.dram, wl, budget, step_w=8.0)
            s_i = sweep_cpu_allocations(ivb.cpu, ivb.dram, wl, budget, step_w=8.0)
            assert s_h.perf_max >= s_i.perf_max, (name, budget)
