"""Synthetic workload generation."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.executor import execute_on_host
from repro.workloads import WorkloadClass, synthetic_workload
from repro.workloads.synthetic import random_workload


class TestSyntheticWorkload:
    def test_defaults_valid(self):
        wl = synthetic_workload()
        assert wl.device == "cpu"
        assert len(wl.phases) == 1

    def test_classification_by_intensity(self):
        assert (
            synthetic_workload(intensity=20.0).workload_class
            is WorkloadClass.COMPUTE_INTENSIVE
        )
        assert (
            synthetic_workload(intensity=0.1).workload_class
            is WorkloadClass.MEMORY_INTENSIVE
        )
        assert (
            synthetic_workload(intensity=0.1, memory_efficiency=0.08).workload_class
            is WorkloadClass.RANDOM_ACCESS
        )
        assert synthetic_workload(intensity=2.0).workload_class is WorkloadClass.MIXED

    def test_multi_phase_spread_deterministic(self):
        a = synthetic_workload(n_phases=3, phase_spread=0.4, seed=5)
        b = synthetic_workload(n_phases=3, phase_spread=0.4, seed=5)
        assert [p.flops for p in a.phases] == [p.flops for p in b.phases]

    def test_zero_spread_gives_identical_phases(self):
        wl = synthetic_workload(n_phases=3, phase_spread=0.0)
        intensities = {p.intensity for p in wl.phases}
        assert len(intensities) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            synthetic_workload(n_phases=0)
        with pytest.raises(ConfigurationError):
            synthetic_workload(phase_spread=1.0)

    def test_executable(self, ivb):
        wl = synthetic_workload(n_phases=2, phase_spread=0.3, seed=1)
        r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 150.0, 90.0)
        assert r.elapsed_s > 0
        assert wl.performance(r) > 0


class TestRandomWorkload:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_always_valid_and_executable(self, ivb, seed):
        wl = random_workload(seed)
        r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 180.0, 100.0)
        assert r.elapsed_s > 0

    def test_seed_determinism(self):
        assert random_workload(9).total_flops == random_workload(9).total_flops
