"""Power elasticity and elasticity-ordered boosting."""

import pytest

from repro.core.elasticity import power_elasticity, rank_by_elasticity
from repro.core.profiler import profile_cpu_workload
from repro.errors import ConfigurationError, SchedulerError
from repro.hardware.platforms import ivybridge_node
from repro.sched import Cluster, Job
from repro.sched.rebalance import RebalancingScheduler
from repro.workloads import cpu_workload


@pytest.fixture(scope="module")
def profiles(ivb):
    return {
        name: profile_cpu_workload(ivb.cpu, ivb.dram, cpu_workload(name))
        for name in ("sra", "stream", "dgemm")
    }


class TestPowerElasticity:
    def test_starved_job_elastic(self, ivb, profiles):
        wl = cpu_workload("stream")
        est = power_elasticity(ivb.cpu, ivb.dram, wl, profiles["stream"], 150.0)
        assert est.per_watt > 0.001

    def test_saturated_job_inelastic(self, ivb, profiles):
        wl = cpu_workload("stream")
        est = power_elasticity(ivb.cpu, ivb.dram, wl, profiles["stream"], 260.0)
        assert est.per_watt == pytest.approx(0.0, abs=1e-6)

    def test_elasticity_decreases_with_budget(self, ivb, profiles):
        wl = cpu_workload("sra")
        estimates = [
            power_elasticity(ivb.cpu, ivb.dram, wl, profiles["sra"], b).per_watt
            for b in (130.0, 170.0, 210.0, 250.0)
        ]
        assert estimates[0] > estimates[-1]

    def test_inadmissible_budget_infinitely_elastic(self, ivb, profiles):
        wl = cpu_workload("dgemm")
        threshold = profiles["dgemm"].productive_threshold_w
        est = power_elasticity(
            ivb.cpu, ivb.dram, wl, profiles["dgemm"], threshold - 5.0, delta_w=10.0
        )
        assert est.base_performance == 0.0
        assert est.per_watt == float("inf")

    def test_delta_validated(self, ivb, profiles):
        with pytest.raises(Exception):
            power_elasticity(
                ivb.cpu, ivb.dram, cpu_workload("sra"), profiles["sra"], 200.0,
                delta_w=0.0,
            )


class TestRanking:
    def test_starved_ranks_above_saturated(self, ivb, profiles):
        candidates = [
            (cpu_workload("stream"), profiles["stream"], 260.0),  # saturated
            (cpu_workload("sra"), profiles["sra"], 140.0),        # starved
        ]
        ranked = rank_by_elasticity(ivb.cpu, ivb.dram, candidates)
        assert ranked[0][0] == 1

    def test_empty_rejected(self, ivb):
        with pytest.raises(ConfigurationError):
            rank_by_elasticity(ivb.cpu, ivb.dram, [])


class TestElasticityBoosting:
    def make(self, boost_order):
        cluster = Cluster(
            node_factory=ivybridge_node, n_nodes=2, global_bound_w=330.0
        )
        return RebalancingScheduler(cluster, boost_order=boost_order)

    def test_invalid_boost_order(self):
        with pytest.raises(SchedulerError):
            self.make("random")

    def test_elasticity_boosting_completes_queue(self):
        sched = self.make("elasticity")
        sched.submit(Job(0, cpu_workload("stream").scaled(0.3), 220.0))
        sched.submit(Job(1, cpu_workload("dgemm"), 240.0))
        stats = sched.run()
        assert stats.n_completed == 2
        assert stats.peak_charged_w <= 330.0 + 1e-9

    def test_elasticity_matches_or_beats_fcfs_boosting(self):
        results = {}
        for order in ("fcfs", "elasticity"):
            sched = self.make(order)
            sched.submit(Job(0, cpu_workload("stream").scaled(0.3), 220.0))
            sched.submit(Job(1, cpu_workload("sra"), 240.0))
            sched.submit(Job(2, cpu_workload("dgemm"), 240.0, submit_time_s=1.0))
            results[order] = sched.run()
        assert results["elasticity"].n_completed == results["fcfs"].n_completed
        assert results["elasticity"].makespan_s <= results["fcfs"].makespan_s * 1.05
