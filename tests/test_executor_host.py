"""Host executor: the coupled CPU/DRAM governor fixed point.

These tests pin down the behaviours Section 3 of the paper attributes to
the capping hardware — the same behaviours the scenario classifier and
COORD rely on.
"""

import pytest

from repro.errors import SweepError
from repro.hardware.component import CappingMechanism
from repro.hardware.rapl import RaplDomainName
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.phase import Phase


UNCAPPED = 1000.0


def run(ivb, wl, cpu_cap, mem_cap):
    return execute_on_host(ivb.cpu, ivb.dram, wl.phases, cpu_cap, mem_cap)


class TestUncappedExecution:
    def test_runs_at_nominal(self, ivb, sra):
        r = run(ivb, sra, UNCAPPED, UNCAPPED)
        ph = r.phases[0]
        assert ph.proc_freq_ghz == pytest.approx(2.5)
        assert ph.proc_duty == 1.0
        assert ph.mem_throttle == 1.0
        assert ph.proc_mechanism is CappingMechanism.NONE
        assert ph.mem_mechanism is CappingMechanism.NONE

    def test_memory_bound_workload_busy_one(self, ivb, sra):
        r = run(ivb, sra, UNCAPPED, UNCAPPED)
        assert r.mem_busy == pytest.approx(1.0)
        assert r.utilization < 1.0

    def test_compute_bound_workload_util_one(self, ivb, dgemm):
        r = run(ivb, dgemm, UNCAPPED, UNCAPPED)
        assert r.utilization == pytest.approx(1.0)
        assert r.mem_busy < 1.0

    def test_empty_phases_rejected(self, ivb):
        with pytest.raises(SweepError):
            execute_on_host(ivb.cpu, ivb.dram, (), UNCAPPED, UNCAPPED)


class TestCpuCapMechanisms:
    def test_light_cap_engages_dvfs(self, ivb, dgemm):
        demand = run(ivb, dgemm, UNCAPPED, UNCAPPED).proc_power_w
        r = run(ivb, dgemm, demand - 20.0, UNCAPPED)
        ph = r.phases[0]
        assert ph.proc_mechanism is CappingMechanism.DVFS
        assert ph.proc_freq_ghz < 2.5
        assert r.proc_power_w <= demand - 20.0 + 1e-6

    def test_heavy_cap_engages_tstates(self, ivb, dgemm):
        r = run(ivb, dgemm, 60.0, UNCAPPED)
        ph = r.phases[0]
        assert ph.proc_mechanism is CappingMechanism.THROTTLE
        assert ph.proc_duty < 1.0
        assert r.proc_power_w <= 60.0 + 1e-6

    def test_cap_below_floor_violated(self, ivb, dgemm):
        r = run(ivb, dgemm, 40.0, UNCAPPED)
        assert r.phases[0].proc_mechanism is CappingMechanism.FLOOR
        assert r.proc_power_w > 40.0
        assert not r.respects_bound

    def test_perf_monotone_in_cpu_cap(self, ivb, dgemm):
        perfs = [
            run(ivb, dgemm, cap, UNCAPPED).flops_rate
            for cap in (60.0, 90.0, 120.0, 150.0, 180.0)
        ]
        assert all(b >= a - 1e-6 for a, b in zip(perfs, perfs[1:]))

    def test_memory_bound_keeps_high_clock_under_cap(self, ivb, stream):
        # RAPL regulates measured power: a stalled workload fits a tight
        # cap without downclocking (scenario III's signature).
        demand = run(ivb, stream, UNCAPPED, UNCAPPED).proc_power_w
        r = run(ivb, stream, demand - 5.0, UNCAPPED)
        assert r.phases[0].proc_freq_ghz > ivb.cpu.pstates.f_min_ghz


class TestDramCapMechanisms:
    def test_cap_throttles_bandwidth(self, ivb, stream):
        r = run(ivb, stream, UNCAPPED, 80.0)
        ph = r.phases[0]
        assert ph.mem_mechanism is CappingMechanism.BANDWIDTH_THROTTLE
        assert ph.mem_throttle < 1.0
        assert r.mem_power_w <= 80.0 + 1e-6

    def test_perf_proportional_to_throttle_level(self, ivb, stream):
        r1 = run(ivb, stream, UNCAPPED, 80.0)
        r2 = run(ivb, stream, UNCAPPED, 100.0)
        ratio_perf = r2.bytes_rate / r1.bytes_rate
        ratio_level = r2.phases[0].mem_throttle / r1.phases[0].mem_throttle
        assert ratio_perf == pytest.approx(ratio_level, rel=1e-6)

    def test_cap_below_floor_disregarded(self, ivb, stream):
        r = run(ivb, stream, UNCAPPED, 30.0)
        ph = r.phases[0]
        assert ph.mem_mechanism is CappingMechanism.FLOOR
        assert ph.mem_throttle == pytest.approx(ivb.dram.min_level)

    def test_compute_bound_ignores_moderate_mem_cap(self, ivb, dgemm):
        # DGEMM's bus is mostly idle; a moderate cap needs no throttling.
        uncapped = run(ivb, dgemm, UNCAPPED, UNCAPPED)
        capped = run(ivb, dgemm, UNCAPPED, uncapped.mem_power_w + 2.0)
        assert capped.phases[0].mem_mechanism is CappingMechanism.NONE
        assert capped.flops_rate == pytest.approx(uncapped.flops_rate)


class TestCoupling:
    def test_throttled_cpu_starves_memory(self, ivb, sra):
        # Scenario IV: memory consumes much less than its allocation.
        r = run(ivb, sra, 55.0, 150.0)
        assert r.mem_power_w < 0.5 * 150.0

    def test_throttled_memory_lowers_cpu_power(self, ivb, sra):
        # Scenario III: actual CPU power slightly below the maximum.
        free = run(ivb, sra, UNCAPPED, UNCAPPED)
        throttled = run(ivb, sra, UNCAPPED, 80.0)
        assert throttled.proc_power_w <= free.proc_power_w + 1e-9

    def test_rapl_counters_accumulate(self, ivb, stream):
        node = ivb
        before_pkg = node.rapl.read_energy_raw(RaplDomainName.PACKAGE)
        r = execute_on_host(
            node.cpu, node.dram, stream.phases, UNCAPPED, UNCAPPED, rapl=node.rapl
        )
        after_pkg = node.rapl.read_energy_raw(RaplDomainName.PACKAGE)
        assert after_pkg != before_pkg
        assert r.energy_j > 0

    def test_caps_recorded_on_result(self, ivb, stream):
        r = run(ivb, stream, 120.0, 90.0)
        assert r.proc_cap_w == 120.0
        assert r.mem_cap_w == 90.0


class TestMultiPhase:
    def test_phases_reported_in_order(self, ivb):
        from repro.workloads import cpu_workload

        mg = cpu_workload("mg")
        r = run(ivb, mg, UNCAPPED, UNCAPPED)
        assert [p.name for p in r.phases] == [p.name for p in mg.phases]

    def test_elapsed_is_sum_of_phases(self, ivb):
        from repro.workloads import cpu_workload

        bt = cpu_workload("bt")
        r = run(ivb, bt, UNCAPPED, UNCAPPED)
        assert r.elapsed_s == pytest.approx(sum(p.time_s for p in r.phases))

    def test_phase_mechanisms_can_differ(self, ivb):
        from repro.workloads import cpu_workload

        # BT's solve phase draws far more CPU power than its rhs phase; a
        # cap between the two demands constrains only the solve phase.
        bt = cpu_workload("bt")
        free = run(ivb, bt, UNCAPPED, UNCAPPED)
        demands = [p.proc_power_w for p in free.phases]
        cap = (max(demands) + min(demands)) / 2
        r = run(ivb, bt, cap, UNCAPPED)
        mechs = {p.proc_mechanism for p in r.phases}
        assert CappingMechanism.DVFS in mechs
        assert CappingMechanism.NONE in mechs
