"""GPU SM / memory domains and card-level reclaim."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PowerBoundError
from repro.hardware.component import CappingMechanism
from repro.hardware.gpu import GpuCard
from repro.hardware.gpu_mem import GpuMemDomain, GpuMemOperatingPoint
from repro.hardware.gpu_sm import GpuSmDomain, GpuSmOperatingPoint
from repro.hardware.platforms import titan_xp_card
from repro.hardware.pstate import PStateTable


@pytest.fixture
def sm():
    return GpuSmDomain(
        n_sm=30,
        pstates=PStateTable(f_min_ghz=1.0, f_nom_ghz=1.9, step_ghz=0.05, v_min_ratio=0.80),
        idle_power_w=20.0,
        max_dynamic_w=230.0,
        flops_per_sm_cycle=256.0,
    )


@pytest.fixture
def mem():
    return GpuMemDomain(
        nominal_mhz=5705.0,
        min_mhz=4200.0,
        step_mhz=50.0,
        idle_power_w=10.0,
        clock_power_w=32.0,
        access_power_w=28.0,
        peak_bw_gbps=480.0,
    )


class TestSmDomain:
    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError):
            GpuSmDomain(
                n_sm=0,
                pstates=PStateTable(f_min_ghz=1.0, f_nom_ghz=1.5),
                idle_power_w=10.0,
                max_dynamic_w=100.0,
            )

    def test_generous_budget_top_clock(self, sm):
        op = sm.operating_point(400.0, 1.0)
        assert op.mechanism is CappingMechanism.NONE
        assert op.freq_ghz == pytest.approx(1.9)

    def test_tight_budget_dvfs(self, sm):
        op = sm.operating_point(120.0, 1.0)
        assert op.mechanism is CappingMechanism.DVFS
        assert op.freq_ghz < 1.9
        assert sm.demand_w(op, 1.0) <= 120.0 + 1e-6

    def test_budget_below_min_clock_is_floor(self, sm):
        op = sm.operating_point(30.0, 1.0)
        assert op.mechanism is CappingMechanism.FLOOR
        assert op.freq_ghz == pytest.approx(1.0)

    def test_no_duty_cycling_on_gpus(self, sm):
        # SMs never throttle below f_min: the floor keeps the minimum clock.
        op = sm.operating_point(0.0, 1.0)
        assert op.freq_ghz == pytest.approx(sm.pstates.f_min_ghz)

    def test_floor_power_at_min_clock(self, sm):
        expected = 20.0 + float(sm.pstates.power_weight(1.0)) * 230.0
        assert sm.floor_power_w == pytest.approx(expected)

    def test_compute_rate(self, sm):
        op = GpuSmOperatingPoint(1.9, CappingMechanism.NONE)
        assert sm.compute_rate_flops(op, 1.0) == pytest.approx(30 * 1.9e9 * 256)

    def test_zero_activity_budget_at_idle(self, sm):
        assert sm.operating_point(20.0, 0.0).mechanism is CappingMechanism.NONE
        assert sm.operating_point(19.0, 0.0).mechanism is CappingMechanism.FLOOR


class TestMemDomain:
    def test_min_above_nominal_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuMemDomain(
                nominal_mhz=800.0, min_mhz=900.0, idle_power_w=5.0,
                clock_power_w=10.0, access_power_w=10.0, peak_bw_gbps=100.0,
            )

    def test_frequency_grid_endpoints(self, mem):
        freqs = mem.frequencies_mhz
        assert freqs[0] == pytest.approx(4200.0)
        assert freqs[-1] == pytest.approx(5705.0)

    def test_allocated_power_at_nominal(self, mem):
        assert mem.allocated_power_w(5705.0) == pytest.approx(10 + 32 + 28)

    def test_allocated_power_monotone(self, mem):
        powers = [mem.allocated_power_w(float(f)) for f in mem.frequencies_mhz]
        assert powers == sorted(powers)

    def test_clock_term_drawn_even_idle(self, mem):
        op = mem.operating_point(5705.0)
        idle_draw = mem.demand_w(op, 0.0)
        assert idle_draw == pytest.approx(10 + 32)
        # Downclocking saves clock-static watts even with no traffic.
        op_lo = mem.operating_point(4200.0)
        assert mem.demand_w(op_lo, 0.0) < idle_draw

    def test_operating_point_snaps(self, mem):
        op = mem.operating_point(5000.0)
        assert op.freq_mhz in mem.frequencies_mhz

    def test_operating_point_out_of_range(self, mem):
        with pytest.raises(PowerBoundError):
            mem.operating_point(3000.0)
        with pytest.raises(PowerBoundError):
            mem.operating_point(6000.0)

    def test_nominal_mechanism_none(self, mem):
        assert mem.operating_point(5705.0).mechanism is CappingMechanism.NONE
        assert mem.operating_point(4800.0).mechanism is CappingMechanism.DVFS

    def test_power_target_inversion(self, mem):
        target = 55.0
        op = mem.operating_point_for_power(target)
        assert mem.allocated_power_w(op.freq_mhz) <= target + 1e-9
        # The next-higher grid clock would overshoot the target.
        idx = int(np.where(mem.frequencies_mhz == op.freq_mhz)[0][0])
        if idx + 1 < mem.frequencies_mhz.size:
            above = float(mem.frequencies_mhz[idx + 1])
            assert mem.allocated_power_w(above) > target

    def test_power_target_below_floor_clamps(self, mem):
        op = mem.operating_point_for_power(5.0)
        assert op.freq_mhz == pytest.approx(4200.0)
        assert op.mechanism is CappingMechanism.FLOOR

    def test_power_target_above_max_gives_nominal(self, mem):
        op = mem.operating_point_for_power(500.0)
        assert op.freq_mhz == pytest.approx(5705.0)
        assert op.mechanism is CappingMechanism.NONE

    def test_bandwidth_scales_with_clock(self, mem):
        nom = mem.bandwidth_ceiling_gbps(mem.operating_point(5705.0), 0.85)
        low = mem.bandwidth_ceiling_gbps(mem.operating_point(4200.0), 0.85)
        assert low / nom == pytest.approx(4200.0 / 5705.0, rel=1e-6)

    def test_offset_roundtrip(self, mem):
        op = GpuMemOperatingPoint(5205.0, CappingMechanism.DVFS)
        assert op.offset_mhz(5705.0) == pytest.approx(-500.0)


class TestGpuCard:
    def test_default_cap_within_range_enforced(self):
        with pytest.raises(ConfigurationError):
            card = titan_xp_card()
            GpuCard(
                name="bad", sm=card.sm, mem=card.mem, board_static_w=10.0,
                min_cap_w=100.0, max_cap_w=200.0, default_cap_w=250.0,
            )

    def test_validate_cap_range(self):
        card = titan_xp_card()
        assert card.validate_cap(250.0) == 250.0
        with pytest.raises(PowerBoundError):
            card.validate_cap(100.0)
        with pytest.raises(PowerBoundError):
            card.validate_cap(350.0)

    def test_reclaim_grows_sm_budget_when_memory_idle(self):
        card = titan_xp_card()
        op = card.mem.operating_point(card.mem.nominal_mhz)
        busy_budget = card.sm_budget_w(250.0, op, 1.0)
        idle_budget = card.sm_budget_w(250.0, op, 0.1)
        assert idle_budget > busy_budget
        assert idle_budget - busy_budget == pytest.approx(0.9 * card.mem.access_power_w)

    def test_reclaim_grows_sm_budget_when_memory_downclocked(self):
        card = titan_xp_card()
        nominal = card.sm_budget_w(250.0, card.mem.operating_point(card.mem.nominal_mhz), 1.0)
        low = card.sm_budget_w(250.0, card.mem.operating_point(card.mem.min_mhz), 1.0)
        assert low > nominal

    def test_sm_budget_never_negative(self):
        card = titan_xp_card()
        op = card.mem.operating_point(card.mem.nominal_mhz)
        assert card.sm_budget_w(0.0, op, 1.0) == 0.0

    def test_power_bounds(self):
        card = titan_xp_card()
        assert card.floor_power_w < card.default_cap_w < card.max_power_w
