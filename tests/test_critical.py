"""Critical power value containers."""

import pytest

from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.errors import ConfigurationError


def cpu_values(**overrides):
    base = dict(
        cpu_l1=112.0, cpu_l2=66.0, cpu_l3=50.0, cpu_l4=48.0,
        mem_l1=116.0, mem_l2=30.0, mem_l3=66.0,
    )
    base.update(overrides)
    return CpuCriticalPowers(**base)


class TestCpuCriticalPowers:
    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError, match="ordered"):
            cpu_values(cpu_l2=120.0)

    def test_positive_memory_values(self):
        with pytest.raises(ConfigurationError, match="positive"):
            cpu_values(mem_l2=0.0)

    def test_mem_l1_below_floor_setting_allowed(self):
        # Compute-bound apps demand less than the hardware floor setting.
        c = cpu_values(mem_l1=50.0, mem_l3=66.0)
        assert c.mem_l1 == 50.0

    def test_max_demand(self):
        assert cpu_values().max_demand_w == pytest.approx(228.0)

    def test_productive_threshold(self):
        assert cpu_values().productive_threshold_w == pytest.approx(96.0)

    def test_as_dict_roundtrip(self):
        c = cpu_values()
        d = c.as_dict()
        assert CpuCriticalPowers(**d) == c
        assert set(d) == {
            "cpu_l1", "cpu_l2", "cpu_l3", "cpu_l4", "mem_l1", "mem_l2", "mem_l3",
        }


def gpu_values(**overrides):
    base = dict(tot_max=290.0, tot_ref=180.0, tot_min=150.0, mem_min=45.0, mem_max=70.0)
    base.update(overrides)
    return GpuCriticalPowers(**base)


class TestGpuCriticalPowers:
    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError, match="ordered"):
            gpu_values(tot_ref=300.0)

    def test_mem_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            gpu_values(mem_min=80.0)

    def test_compute_intensity_test(self):
        g = gpu_values(tot_max=295.0)
        assert g.is_compute_intensive(300.0)
        assert not gpu_values(tot_max=200.0).is_compute_intensive(300.0)

    def test_compute_intensity_threshold_param(self):
        g = gpu_values(tot_max=250.0)
        assert g.is_compute_intensive(300.0, threshold=0.8)

    def test_compute_intensity_bad_hw_max(self):
        with pytest.raises(ConfigurationError):
            gpu_values().is_compute_intensive(0.0)

    def test_as_dict_roundtrip(self):
        g = gpu_values()
        assert GpuCriticalPowers(**g.as_dict()) == g
