"""Exception hierarchy contracts."""

import pytest

import repro.errors as errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "ConfigurationError",
            "UnitError",
            "PowerBoundError",
            "InfeasibleBudgetError",
            "BudgetTooSmallError",
            "UnknownWorkloadError",
            "UnknownPlatformError",
            "ProfilingError",
            "SweepError",
            "ConvergenceError",
            "SchedulerError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)

    def test_unit_error_is_configuration_error(self):
        assert issubclass(errors.UnitError, errors.ConfigurationError)

    def test_unknown_lookups_are_key_errors(self):
        assert issubclass(errors.UnknownWorkloadError, KeyError)
        assert issubclass(errors.UnknownPlatformError, KeyError)

    def test_infeasible_budget_is_power_bound_error(self):
        assert issubclass(errors.InfeasibleBudgetError, errors.PowerBoundError)


class TestBudgetTooSmall:
    def test_carries_values(self):
        exc = errors.BudgetTooSmallError(90.0, 120.0)
        assert exc.budget_w == 90.0
        assert exc.threshold_w == 120.0
        assert "90.0 W" in str(exc)
        assert "Algorithm 1" in str(exc)


class TestConvergenceError:
    def test_carries_diagnostics(self):
        exc = errors.ConvergenceError(16, 0.125)
        assert exc.iterations == 16
        assert exc.residual == 0.125
        assert "16" in str(exc)
