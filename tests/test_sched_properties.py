"""Property-based tests on the batch schedulers (hypothesis).

Job/cluster generation lives in ``tests/conftest.py`` (``job_mixes``,
``cluster_shapes``), shared with the fleet battery in ``test_fleet.py``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.platforms import ivybridge_node
from repro.sched import Cluster, Job, JobState, PowerBoundedScheduler
from repro.sched.rebalance import RebalancingScheduler
from repro.workloads import cpu_workload

from tests.conftest import SCHED_WORKLOAD_NAMES, job_mixes

# Profiles are per (workload, platform) and deterministic: compute them
# once for the whole module instead of once per generated scheduler.
_NODE = ivybridge_node()
_PROFILES: dict = {}


def _profiles():
    if not _PROFILES:
        from repro.core.profiler import profile_cpu_workload

        for name in SCHED_WORKLOAD_NAMES:
            _PROFILES[name] = profile_cpu_workload(
                _NODE.cpu, _NODE.dram, cpu_workload(name)
            )
    return _PROFILES


def run_mix(scheduler_cls, jobs, n_nodes, bound):
    cluster = Cluster(
        node_factory=ivybridge_node, n_nodes=n_nodes, global_bound_w=bound
    )
    sched = scheduler_cls(cluster)
    sched._profile_cache.update(_profiles())
    for job in jobs:
        sched.submit(job)
    stats = sched.run()
    return sched, stats


class TestSchedulerProperties:
    @settings(max_examples=25, deadline=None)
    @given(jobs=job_mixes(), n_nodes=st.integers(1, 4), bound=st.floats(150.0, 900.0))
    def test_no_job_lost(self, jobs, n_nodes, bound):
        sched, stats = run_mix(PowerBoundedScheduler, jobs, n_nodes, bound)
        assert stats.n_completed + stats.n_rejected == len(jobs)
        terminal = {JobState.COMPLETED, JobState.REJECTED}
        assert all(r.state in terminal for r in sched.records.values())

    @settings(max_examples=25, deadline=None)
    @given(jobs=job_mixes(), n_nodes=st.integers(1, 4), bound=st.floats(150.0, 900.0))
    def test_global_bound_never_exceeded(self, jobs, n_nodes, bound):
        _, stats = run_mix(PowerBoundedScheduler, jobs, n_nodes, bound)
        assert stats.peak_charged_w <= bound + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(jobs=job_mixes(), n_nodes=st.integers(1, 4), bound=st.floats(150.0, 900.0))
    def test_completed_jobs_have_consistent_times(self, jobs, n_nodes, bound):
        sched, stats = run_mix(PowerBoundedScheduler, jobs, n_nodes, bound)
        for record in sched.records.values():
            if record.state is JobState.COMPLETED:
                assert record.start_time_s >= record.job.submit_time_s - 1e-9
                assert record.finish_time_s > record.start_time_s
                assert record.finish_time_s <= stats.makespan_s + 1e-9
                assert record.granted_budget_w <= record.job.requested_budget_w + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(jobs=job_mixes(), n_nodes=st.integers(1, 3), bound=st.floats(200.0, 700.0))
    def test_rebalancer_never_slower_and_never_over_bound(self, jobs, n_nodes, bound):
        def clone(js):
            return [
                Job(j.job_id, j.workload, j.requested_budget_w, j.submit_time_s)
                for j in js
            ]

        _, base = run_mix(PowerBoundedScheduler, clone(jobs), n_nodes, bound)
        _, dyn = run_mix(RebalancingScheduler, clone(jobs), n_nodes, bound)
        assert dyn.n_completed == base.n_completed
        assert dyn.peak_charged_w <= bound + 1e-6
        # Boosts are non-preemptive: a held boost can delay a *later*
        # arrival slightly, so the guarantee is "never more than a few
        # percent slower" rather than strictly never slower.
        if base.n_completed and base.makespan_s > 0:
            assert dyn.makespan_s <= base.makespan_s * 1.05 + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(jobs=job_mixes(), bound=st.floats(250.0, 900.0))
    def test_fcfs_start_order(self, jobs, bound):
        sched, _ = run_mix(PowerBoundedScheduler, jobs, 2, bound)
        started = [
            r for r in sched.records.values() if r.state is JobState.COMPLETED
        ]
        started.sort(key=lambda r: (r.job.submit_time_s, r.job.job_id))
        starts = [r.start_time_s for r in started]
        assert starts == sorted(starts)
