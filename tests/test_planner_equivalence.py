"""The adaptive sweep planner: bit-for-bit equivalence with the oracle.

The planner's contract is *exactness*, not approximation: every answer —
best point (all `SweepPoint` fields, all per-phase execution records),
plateau bracket, budget-curve arrays — must equal what the full-grid
oracle sweeps report, with exact float equality and no tolerances, while
executing a fraction of the native grid.  These tests lock that contract
across the full workload registries on every shipped platform, through
the mode-aware dispatchers and the ``REPRO_SWEEP`` switch, on
hypothesis-fuzzed synthetic platforms, and on the registry cases known
to trip the structure-violation fallback.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import SWEEP_MODE_ENV_VAR, SweepEngine, resolve_mode
from repro.core.planner import (
    adaptive_cpu_budget_curve,
    adaptive_gpu_budget_curve,
    plan_cpu_sweep,
    plan_gpu_sweep,
    sweep_cpu_best,
    sweep_gpu_best,
)
from repro.core.sweep import (
    cpu_budget_curve,
    gpu_budget_curve,
    gpu_freq_axis,
    optimal_plateau,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.errors import SweepError
from repro.workloads import (
    cpu_workload,
    gpu_workload,
    list_cpu_workloads,
    list_gpu_workloads,
)

from tests.conftest import planner_cpu_cases

CPU_BUDGETS = (144.0, 176.0, 208.0, 240.0)
GPU_CAPS = (130.0, 150.0, 190.0, 250.0)


def oracle_engine() -> SweepEngine:
    return SweepEngine(n_jobs=1)


def assert_points_identical(planned, oracle) -> None:
    """Every SweepPoint field, exactly — down to per-phase records."""
    assert planned == oracle
    assert planned.allocation == oracle.allocation
    assert planned.performance == oracle.performance
    assert planned.scenario == oracle.scenario
    assert planned.result.proc_cap_w == oracle.result.proc_cap_w
    assert planned.result.mem_cap_w == oracle.result.mem_cap_w
    assert planned.result.device == oracle.result.device
    for ps, pp in zip(oracle.result.phases, planned.result.phases):
        for field in dataclasses.fields(ps):
            assert getattr(pp, field.name) == getattr(ps, field.name), field.name


def assert_plan_matches_sweep(planned, sweep) -> None:
    lo, hi = optimal_plateau(sweep.points)
    assert planned.plateau == (lo, hi)
    assert planned.best_index == (lo + hi) // 2
    assert_points_identical(planned.best, sweep.best)
    assert planned.perf_max == sweep.perf_max
    assert planned.workload_name == sweep.workload_name
    assert planned.metric_unit == sweep.metric_unit
    assert planned.stats.native_points == len(sweep.points)
    assert planned.stats.executed_points <= planned.stats.native_points
    if planned.stats.fallback:
        assert planned.stats.executed_points == planned.stats.native_points


# ---------------------------------------------------------------------------
# full-registry equivalence: every workload, every platform
# ---------------------------------------------------------------------------

class TestCpuRegistryEquivalence:
    @pytest.mark.parametrize("name", list_cpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["ivb", "has"])
    def test_full_registry(self, request, platform_fixture, name):
        node = request.getfixturevalue(platform_fixture)
        wl = cpu_workload(name)
        engine = SweepEngine(n_jobs=1)  # shared: hints/stash carry over
        for budget in CPU_BUDGETS:
            oracle = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, step_w=4.0,
                engine=oracle_engine(),
            )
            planned = plan_cpu_sweep(
                node.cpu, node.dram, wl, budget, step_w=4.0, engine=engine
            )
            assert_plan_matches_sweep(planned, oracle)

    def test_registry_executes_fraction_of_native(self, ivb, has):
        engine = SweepEngine(n_jobs=1)
        for node in (ivb, has):
            for name in list_cpu_workloads():
                wl = cpu_workload(name)
                for budget in CPU_BUDGETS:
                    plan_cpu_sweep(
                        node.cpu, node.dram, wl, budget, step_w=4.0,
                        engine=engine,
                    )
        stats = engine.planner.stats
        assert stats.sweeps == 2 * len(list_cpu_workloads()) * len(CPU_BUDGETS)
        assert stats.savings_ratio > 2.0
        assert stats.executed_points + stats.points_saved == stats.native_points


class TestGpuRegistryEquivalence:
    @pytest.mark.parametrize("name", list_gpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["xp", "tv"])
    def test_full_registry(self, request, platform_fixture, name):
        card = request.getfixturevalue(platform_fixture)
        wl = gpu_workload(name)
        engine = SweepEngine(n_jobs=1)
        for cap in GPU_CAPS:
            oracle = sweep_gpu_allocations(
                card, wl, cap, freq_stride=1, engine=oracle_engine()
            )
            planned = plan_gpu_sweep(
                card, wl, cap, freq_stride=1, engine=engine
            )
            assert_plan_matches_sweep(planned, oracle)

    def test_registry_executes_fraction_of_native(self, xp, tv):
        engine = SweepEngine(n_jobs=1)
        for card in (xp, tv):
            for name in list_gpu_workloads():
                wl = gpu_workload(name)
                for cap in GPU_CAPS:
                    plan_gpu_sweep(card, wl, cap, freq_stride=1, engine=engine)
        stats = engine.planner.stats
        assert stats.savings_ratio > 2.0
        assert stats.reused_points > 0  # saturation reuse across caps


# ---------------------------------------------------------------------------
# budget curves: exact array equality, warm starts, saturation stop
# ---------------------------------------------------------------------------

class TestBudgetCurveEquivalence:
    @pytest.mark.parametrize("name", ("dgemm", "sra"))
    @pytest.mark.parametrize("platform_fixture", ["ivb", "has"])
    def test_cpu_curve_is_bit_identical(self, request, platform_fixture, name):
        node = request.getfixturevalue(platform_fixture)
        wl = cpu_workload(name)
        budgets = np.arange(120.0, 301.0, 10.0)
        oracle = cpu_budget_curve(
            node.cpu, node.dram, wl, budgets, step_w=6.0,
            engine=oracle_engine(),
        )
        engine = SweepEngine(n_jobs=1)
        curve = adaptive_cpu_budget_curve(
            node.cpu, node.dram, wl, budgets, step_w=6.0, engine=engine
        )
        assert np.array_equal(curve.budgets_w, oracle.budgets_w)
        assert np.array_equal(curve.perf_max, oracle.perf_max)
        assert np.array_equal(curve.optimal_mem_w, oracle.optimal_mem_w)
        assert engine.planner.stats.warm_starts >= budgets.size - 1

    @pytest.mark.parametrize("name", ("sgemm", "minife"))
    @pytest.mark.parametrize("platform_fixture", ["xp", "tv"])
    def test_gpu_curve_is_bit_identical(self, request, platform_fixture, name):
        card = request.getfixturevalue(platform_fixture)
        wl = gpu_workload(name)
        caps = np.arange(130.0, 301.0, 10.0)
        oracle = gpu_budget_curve(
            card, wl, caps, freq_stride=1, engine=oracle_engine()
        )
        engine = SweepEngine(n_jobs=1)
        curve = adaptive_gpu_budget_curve(
            card, wl, caps, freq_stride=1, engine=engine
        )
        assert np.array_equal(curve.budgets_w, oracle.budgets_w)
        assert np.array_equal(curve.perf_max, oracle.perf_max)
        assert np.array_equal(curve.optimal_mem_w, oracle.optimal_mem_w)

    def test_stop_at_saturation_is_a_prefix(self, ivb, sra):
        budgets = np.arange(140.0, 301.0, 20.0)
        full = adaptive_cpu_budget_curve(
            ivb.cpu, ivb.dram, sra, budgets, step_w=8.0,
            engine=SweepEngine(n_jobs=1),
        )
        short = adaptive_cpu_budget_curve(
            ivb.cpu, ivb.dram, sra, budgets, step_w=8.0,
            engine=SweepEngine(n_jobs=1), stop_at_saturation=True,
        )
        k = short.budgets_w.size
        assert k < budgets.size  # SRA saturates around 225 W
        assert np.array_equal(short.budgets_w, full.budgets_w[:k])
        assert np.array_equal(short.perf_max, full.perf_max[:k])
        # Sound truncation: the prefix already contains the curve's top.
        assert short.perf_max.max() == full.perf_max.max()

    def test_empty_budgets_rejected(self, ivb, sra, xp, sgemm):
        with pytest.raises(SweepError):
            adaptive_cpu_budget_curve(ivb.cpu, ivb.dram, sra, [])
        with pytest.raises(SweepError):
            adaptive_gpu_budget_curve(xp, sgemm, [])

    def test_cpu_saturation_reuse_kicks_in_across_budgets(self, ivb, dgemm):
        engine = SweepEngine(n_jobs=1)
        adaptive_cpu_budget_curve(
            ivb.cpu, ivb.dram, dgemm, np.arange(200.0, 301.0, 10.0),
            step_w=6.0, engine=engine,
        )
        assert engine.planner.stats.reused_points > 0


# ---------------------------------------------------------------------------
# structure-violation fallback: exactness survives, accounting is honest
# ---------------------------------------------------------------------------

class TestFallback:
    def test_cpu_fallback_case_stays_exact(self, ivb, sra):
        # Cold plan of SRA on IvyBridge at 120 W / 6 W steps violates the
        # probe certificates (known registry case) and must transparently
        # run the full oracle sweep.
        engine = SweepEngine(n_jobs=1)
        planned = plan_cpu_sweep(
            ivb.cpu, ivb.dram, sra, 120.0, step_w=6.0, engine=engine
        )
        assert planned.stats.fallback
        assert planned.stats.executed_points == planned.stats.native_points
        assert planned.stats.reused_points == 0
        oracle = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 120.0, step_w=6.0, engine=oracle_engine()
        )
        assert_plan_matches_sweep(planned, oracle)
        assert engine.planner.stats.fallbacks == 1

    def test_gpu_fallback_case_stays_exact(self, xp, sgemm):
        engine = SweepEngine(n_jobs=1)
        planned = plan_gpu_sweep(xp, sgemm, 130.0, freq_stride=1, engine=engine)
        assert planned.stats.fallback
        oracle = sweep_gpu_allocations(
            xp, sgemm, 130.0, freq_stride=1, engine=oracle_engine()
        )
        assert_plan_matches_sweep(planned, oracle)

    def test_fallback_does_not_poison_the_hint_memory(self, ivb, sra):
        # After a fallback the remembered hint is marked unclean, so the
        # next plan of the same grid probes densely instead of leanly —
        # and still answers exactly.
        engine = SweepEngine(n_jobs=1)
        plan_cpu_sweep(ivb.cpu, ivb.dram, sra, 120.0, step_w=6.0, engine=engine)
        planned = plan_cpu_sweep(
            ivb.cpu, ivb.dram, sra, 120.0, step_w=6.0, engine=engine
        )
        assert planned.stats.warm_started
        oracle = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 120.0, step_w=6.0, engine=oracle_engine()
        )
        assert_plan_matches_sweep(planned, oracle)

    def test_tiny_grid_is_swept_in_full_without_probes(self, ivb, sra):
        # 24 W leaves a single grid point: below the planner floor the
        # whole grid executes and no probe accounting is reported.
        planned = plan_cpu_sweep(
            ivb.cpu, ivb.dram, sra, 24.0, step_w=4.0,
            engine=SweepEngine(n_jobs=1),
        )
        assert planned.stats.probe_points == 0
        assert not planned.stats.fallback
        assert planned.stats.executed_points == planned.stats.native_points == 1


# ---------------------------------------------------------------------------
# mode-aware dispatch: engine mode, env var, entry points
# ---------------------------------------------------------------------------

class TestModeDispatch:
    def test_engine_mode_validation(self):
        assert SweepEngine(n_jobs=1).mode == "full"
        assert SweepEngine(n_jobs=1, mode="adaptive").mode == "adaptive"
        with pytest.raises(SweepError):
            SweepEngine(n_jobs=1, mode="turbo")

    def test_env_var_selects_adaptive(self, monkeypatch):
        monkeypatch.setenv(SWEEP_MODE_ENV_VAR, "adaptive")
        assert resolve_mode(None) == "adaptive"
        assert SweepEngine(n_jobs=1).mode == "adaptive"
        # Explicit argument wins over the environment.
        assert SweepEngine(n_jobs=1, mode="full").mode == "full"

    def test_env_var_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(SWEEP_MODE_ENV_VAR, "fastest")
        with pytest.raises(SweepError):
            resolve_mode(None)

    def test_sweep_cpu_best_identical_across_modes(self, has, dgemm):
        full = sweep_cpu_best(
            has.cpu, has.dram, dgemm, 208.0, step_w=4.0,
            engine=SweepEngine(n_jobs=1),
        )
        adaptive = sweep_cpu_best(
            has.cpu, has.dram, dgemm, 208.0, step_w=4.0,
            engine=SweepEngine(n_jobs=1, mode="adaptive"),
        )
        assert_points_identical(adaptive, full)

    def test_sweep_gpu_best_identical_across_modes(self, tv, minife):
        full = sweep_gpu_best(
            tv, minife, 190.0, freq_stride=1, engine=SweepEngine(n_jobs=1)
        )
        adaptive = sweep_gpu_best(
            tv, minife, 190.0, freq_stride=1,
            engine=SweepEngine(n_jobs=1, mode="adaptive"),
        )
        assert_points_identical(adaptive, full)

    def test_budget_curve_dispatches_on_adaptive_engine(self, ivb, dgemm):
        budgets = np.arange(144.0, 241.0, 16.0)
        engine = SweepEngine(n_jobs=1, mode="adaptive")
        curve = cpu_budget_curve(
            ivb.cpu, ivb.dram, dgemm, budgets, step_w=4.0, engine=engine
        )
        oracle = cpu_budget_curve(
            ivb.cpu, ivb.dram, dgemm, budgets, step_w=4.0,
            engine=oracle_engine(),
        )
        assert np.array_equal(curve.perf_max, oracle.perf_max)
        assert np.array_equal(curve.optimal_mem_w, oracle.optimal_mem_w)
        # The adaptive engine planned the sweeps instead of brute-forcing.
        assert engine.planner.stats.sweeps == budgets.size
        assert engine.planner.stats.points_saved > 0

    def test_gpu_budget_curve_dispatches_on_adaptive_engine(self, xp, minife):
        caps = np.arange(140.0, 251.0, 10.0)
        engine = SweepEngine(n_jobs=1, mode="adaptive")
        curve = gpu_budget_curve(xp, minife, caps, freq_stride=2, engine=engine)
        oracle = gpu_budget_curve(
            xp, minife, caps, freq_stride=2, engine=oracle_engine()
        )
        assert np.array_equal(curve.perf_max, oracle.perf_max)
        assert engine.planner.stats.points_saved > 0


# ---------------------------------------------------------------------------
# hypothesis fuzz: synthetic platforms, including certificate violations
# ---------------------------------------------------------------------------

class TestFuzzedEquivalence:
    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(case=planner_cpu_cases())
    def test_fuzzed_platforms(self, case):
        cpu, dram, wl = case["cpu"], case["dram"], case["workload"]
        kwargs = {
            k: case[k]
            for k in ("budget_w", "step_w", "mem_min_w", "proc_min_w")
        }
        oracle = sweep_cpu_allocations(
            cpu, dram, wl, engine=oracle_engine(), **kwargs
        )
        planned = plan_cpu_sweep(
            cpu, dram, wl, engine=SweepEngine(n_jobs=1), **kwargs
        )
        assert_plan_matches_sweep(planned, oracle)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        cap=st.integers(min_value=130, max_value=280).map(float),
        stride=st.integers(min_value=1, max_value=4),
        name=st.sampled_from(("sgemm", "minife", "gpu-stream")),
        card_fixture=st.sampled_from(("xp", "tv")),
    )
    def test_fuzzed_gpu_caps(self, request, cap, stride, name, card_fixture):
        card = request.getfixturevalue(card_fixture)
        wl = gpu_workload(name)
        oracle = sweep_gpu_allocations(
            card, wl, cap, freq_stride=stride, engine=oracle_engine()
        )
        planned = plan_gpu_sweep(
            card, wl, cap, freq_stride=stride, engine=SweepEngine(n_jobs=1)
        )
        assert_plan_matches_sweep(planned, oracle)
