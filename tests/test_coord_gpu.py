"""COORD for GPU computing (Algorithm 2)."""

import pytest

from repro.core.coord import CoordStatus
from repro.core.coord_gpu import apply_gpu_decision, coord_gpu
from repro.core.critical import GpuCriticalPowers
from repro.core.profiler import profile_gpu_workload
from repro.errors import ConfigurationError
from repro.hardware.nvml import NvmlDevice
from repro.perfmodel.executor import execute_on_gpu


@pytest.fixture
def mem_intensive():
    return GpuCriticalPowers(
        tot_max=190.0, tot_ref=160.0, tot_min=130.0, mem_min=45.0, mem_max=70.0
    )


@pytest.fixture
def compute_intensive():
    return GpuCriticalPowers(
        tot_max=295.0, tot_ref=180.0, tot_min=150.0, mem_min=45.0, mem_max=70.0
    )


class TestBranches:
    def test_compute_intensive_minimizes_memory(self, compute_intensive):
        d = coord_gpu(compute_intensive, 250.0, hardware_max_w=300.0)
        assert d.allocation.mem_w == pytest.approx(45.0)
        assert d.allocation.proc_w == pytest.approx(205.0)

    def test_memory_intensive_large_budget_maximizes_memory(self, mem_intensive):
        d = coord_gpu(mem_intensive, 200.0, hardware_max_w=300.0)
        assert d.allocation.mem_w == pytest.approx(70.0)

    def test_memory_intensive_small_budget_balances(self, mem_intensive):
        budget = 150.0  # below tot_ref
        d = coord_gpu(mem_intensive, budget, hardware_max_w=300.0)
        expected = 45.0 + 0.5 * (budget - 130.0)
        assert d.allocation.mem_w == pytest.approx(expected)
        assert d.allocation.total_w == pytest.approx(budget)

    def test_balanced_branch_clamps_to_mem_range(self, mem_intensive):
        d = coord_gpu(mem_intensive, 145.0, hardware_max_w=300.0, gamma=1.0)
        assert 45.0 <= d.allocation.mem_w <= 70.0

    def test_surplus_reported(self, mem_intensive):
        d = coord_gpu(mem_intensive, 250.0, hardware_max_w=300.0)
        assert d.status is CoordStatus.SURPLUS
        assert d.surplus_w == pytest.approx(60.0)

    def test_gamma_validated(self, mem_intensive):
        with pytest.raises(ConfigurationError):
            coord_gpu(mem_intensive, 200.0, hardware_max_w=300.0, gamma=1.5)

    def test_gamma_zero_pins_memory_at_min(self, mem_intensive):
        d = coord_gpu(mem_intensive, 150.0, hardware_max_w=300.0, gamma=0.0)
        assert d.allocation.mem_w == pytest.approx(45.0)


class TestApplyDecision:
    def test_programs_cap_and_clock(self, xp, minife):
        device = NvmlDevice(xp)
        critical = profile_gpu_workload(xp, minife)
        d = coord_gpu(critical, 150.0, hardware_max_w=xp.max_cap_w)
        op = apply_gpu_decision(device, d, 150.0)
        assert device.power_limit_w == pytest.approx(150.0)
        assert xp.mem.allocated_power_w(op.freq_mhz) <= d.allocation.mem_w + 1e-9

    def test_cap_clamped_to_driver_range(self, xp, minife):
        device = NvmlDevice(xp)
        critical = profile_gpu_workload(xp, minife)
        d = coord_gpu(critical, 100.0, hardware_max_w=xp.max_cap_w)
        apply_gpu_decision(device, d, 100.0)
        assert device.power_limit_w == pytest.approx(xp.min_cap_w)


class TestAgainstOracleAndDefault:
    @pytest.mark.parametrize(
        "wl_name", ["sgemm", "gpu-stream", "minife", "cloverleaf", "cufft", "hpcg"]
    )
    def test_close_to_best_at_large_caps(self, xp, wl_name):
        from repro.core.sweep import sweep_gpu_allocations
        from repro.workloads import gpu_workload

        wl = gpu_workload(wl_name)
        device = NvmlDevice(xp)
        critical = profile_gpu_workload(xp, wl)
        cap = 250.0
        d = coord_gpu(critical, cap, hardware_max_w=xp.max_cap_w)
        op = apply_gpu_decision(device, d, cap)
        perf = wl.performance(execute_on_gpu(xp, wl.phases, cap, op.freq_mhz))
        best = sweep_gpu_allocations(xp, wl, cap, freq_stride=1).perf_max
        assert perf >= 0.95 * best, wl_name

    def test_beats_default_for_starved_stream(self, xp, gpu_stream):
        # The balance branch engages below tot_ref (~127 W for stream on
        # the XP); at the driver's minimum cap COORD downclocks memory and
        # reclaims the watts for the SMs, beating the oblivious default.
        device = NvmlDevice(xp)
        critical = profile_gpu_workload(xp, gpu_stream)
        cap = xp.min_cap_w
        assert cap < critical.tot_ref
        d = coord_gpu(critical, cap, hardware_max_w=xp.max_cap_w)
        op = apply_gpu_decision(device, d, cap)
        coord_perf = gpu_stream.performance(
            execute_on_gpu(xp, gpu_stream.phases, cap, op.freq_mhz)
        )
        default_perf = gpu_stream.performance(
            execute_on_gpu(xp, gpu_stream.phases, cap, None)
        )
        assert coord_perf > default_perf * 1.05

    def test_never_worse_than_default_significantly(self, xp):
        from repro.workloads import list_gpu_workloads, gpu_workload

        device = NvmlDevice(xp)
        for name in list_gpu_workloads():
            wl = gpu_workload(name)
            critical = profile_gpu_workload(xp, wl)
            for cap in (130.0, 190.0, 250.0):
                d = coord_gpu(critical, cap, hardware_max_w=xp.max_cap_w)
                op = apply_gpu_decision(device, d, cap)
                coord_perf = wl.performance(
                    execute_on_gpu(xp, wl.phases, cap, op.freq_mhz)
                )
                default_perf = wl.performance(execute_on_gpu(xp, wl.phases, cap, None))
                assert coord_perf >= 0.92 * default_perf, (name, cap)
