"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ivybridge" in out
        assert "sra" in out and "sgemm" in out
        assert "fig9" in out


class TestProfile:
    def test_cpu_table(self, capsys):
        assert main(["profile", "stream"]) == 0
        out = capsys.readouterr().out
        assert "cpu_l1" in out and "mem_l1" in out

    def test_cpu_json(self, capsys):
        assert main(["profile", "stream", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "cpu-critical-powers"

    def test_gpu_default_platform(self, capsys):
        assert main(["profile", "minife"]) == 0
        assert "tot_max" in capsys.readouterr().out

    def test_unknown_workload_is_error(self, capsys):
        assert main(["profile", "linpack"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_device_platform_mismatch(self, capsys):
        assert main(["profile", "stream", "--platform", "titan-xp"]) == 2
        assert "needs a CPU node" in capsys.readouterr().err


class TestCoord:
    def test_cpu_coordinate_and_execute(self, capsys):
        assert main(["coord", "stream", "208", "--execute"]) == 0
        out = capsys.readouterr().out
        assert "allocation:" in out
        assert "performance:" in out
        assert "bound respected: True" in out

    def test_rejected_budget_exit_code(self, capsys):
        assert main(["coord", "dgemm", "60"]) == 1
        assert "budget too small" in capsys.readouterr().out

    def test_gpu_coordinate(self, capsys):
        assert main(["coord", "minife", "150", "--execute"]) == 0
        out = capsys.readouterr().out
        assert "memory clock" in out


class TestSweep:
    def test_cpu_sweep(self, capsys):
        assert main(["sweep", "sra", "240", "--step", "16"]) == 0
        out = capsys.readouterr().out
        assert "P_mem (W)" in out
        assert "best:" in out

    def test_gpu_sweep(self, capsys):
        assert main(["sweep", "gpu-stream", "150"]) == 0
        assert "mem clk (MHz)" in capsys.readouterr().out


class TestExperiment:
    def test_single_artifact(self, capsys):
        assert main(["experiment", "fig3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "=== fig3" in out

    def test_unknown_artifact(self, capsys):
        assert main(["experiment", "fig42"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
