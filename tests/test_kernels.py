"""Executable NumPy kernels and their analytic accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.kernels import (
    KERNELS,
    dgemm_kernel,
    ep_kernel,
    fft_kernel,
    integer_sort_kernel,
    random_access_kernel,
    run_kernel,
    spmv_kernel,
    stream_triad_kernel,
)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_checksum_stable_across_runs(self, name):
        a = run_kernel(name)
        b = run_kernel(name)
        assert a.checksum == b.checksum

    def test_seed_changes_checksum(self):
        a = stream_triad_kernel(n=10_000, seed=0)
        b = stream_triad_kernel(n=10_000, seed=1)
        assert a.checksum != b.checksum


class TestAccounting:
    def test_stream_intensity(self):
        r = stream_triad_kernel(n=10_000)
        assert r.intensity == pytest.approx(2.0 / 24.0)
        assert r.flops == 2.0 * 10_000

    def test_dgemm_flops(self):
        n = 64
        r = dgemm_kernel(n=n)
        assert r.flops == 2.0 * n**3

    def test_dgemm_blocked_intensity(self):
        r = dgemm_kernel(n=256)
        assert r.intensity == pytest.approx(16.0)

    def test_dgemm_small_matrix_compulsory_traffic(self):
        # For tiny matrices the 3n^2 footprint dominates the blocked model.
        n = 8
        r = dgemm_kernel(n=n)
        assert r.bytes_moved == pytest.approx(3 * 8.0 * n * n)

    def test_random_access_traffic(self):
        r = random_access_kernel(table_exp=12, n_updates=1000)
        assert r.bytes_moved == 128.0 * 1000
        assert r.flops == 1000.0

    def test_random_access_bad_table(self):
        with pytest.raises(ConfigurationError):
            random_access_kernel(table_exp=2)

    def test_spmv_low_intensity(self):
        r = spmv_kernel(n_rows=1000, nnz_per_row=8)
        assert r.intensity < 0.2

    def test_ep_high_intensity(self):
        r = ep_kernel(n=10_000)
        assert r.intensity == pytest.approx(200.0)

    def test_fft_accounting(self):
        r = fft_kernel(n=1 << 12)
        assert r.flops == pytest.approx(5.0 * (1 << 12) * 12)

    def test_is_accounting(self):
        r = integer_sort_kernel(n=10_000)
        assert r.flops == 2.0 * 10_000
        assert r.elapsed_s > 0

    def test_stencil_accounting(self):
        from repro.workloads.kernels import stencil_kernel

        n, iters = 32, 3
        r = stencil_kernel(n=n, iterations=iters)
        points = (n - 2) ** 3 * iters
        assert r.flops == pytest.approx(8.0 * points)
        assert r.intensity == pytest.approx(0.5)

    def test_multigrid_low_intensity(self):
        from repro.workloads.kernels import multigrid_kernel

        r = multigrid_kernel(n=32)
        assert 0.1 < r.intensity < 0.5

    def test_multigrid_shapes_compose(self):
        # The V-cycle fragment needs an even grid; make sure the default
        # restrict/prolong round trip preserves the fine resolution.
        from repro.workloads.kernels import multigrid_kernel

        r = multigrid_kernel(n=16)
        assert r.checksum != 0.0

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            run_kernel("hpl")


class TestAgainstSuite:
    def test_suite_intensities_match_kernels(self):
        from repro.workloads.characterize import validate_suite_intensities

        pairs = validate_suite_intensities(rel_tolerance=4.0)
        # Every CPU workload with a kernel is covered.
        assert set(pairs) == set(KERNELS)
