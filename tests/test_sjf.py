"""SJF admission ordering."""

import pytest

from repro.errors import SchedulerError
from repro.hardware.platforms import ivybridge_node
from repro.sched import Cluster, Job, PowerBoundedScheduler
from repro.workloads import cpu_workload


def make_sched(order="fcfs", n_nodes=1, bound=300.0):
    cluster = Cluster(
        node_factory=ivybridge_node, n_nodes=n_nodes, global_bound_w=bound
    )
    return PowerBoundedScheduler(cluster, order=order)


def short_and_long():
    """One long job submitted just before several short ones."""
    jobs = [Job(0, cpu_workload("dgemm").scaled(3.0), 250.0, submit_time_s=0.0)]
    for i in range(1, 4):
        jobs.append(
            Job(i, cpu_workload("stream").scaled(0.2), 220.0, submit_time_s=0.0)
        )
    return jobs


class TestSjf:
    def test_invalid_order_rejected(self):
        with pytest.raises(SchedulerError):
            make_sched(order="lifo")

    def test_sjf_runs_short_jobs_first(self):
        sched = make_sched(order="sjf")
        for job in short_and_long():
            sched.submit(job)
        sched.run()
        long_start = sched.records[0].start_time_s
        short_starts = [sched.records[i].start_time_s for i in (1, 2, 3)]
        assert all(s < long_start for s in short_starts)

    def test_fcfs_runs_in_submit_order(self):
        sched = make_sched(order="fcfs")
        for job in short_and_long():
            sched.submit(job)
        sched.run()
        assert sched.records[0].start_time_s <= sched.records[1].start_time_s

    def test_sjf_improves_mean_wait(self):
        waits = {}
        for order in ("fcfs", "sjf"):
            sched = make_sched(order=order)
            for job in short_and_long():
                sched.submit(job)
            waits[order] = sched.run().mean_wait_s
        assert waits["sjf"] < waits["fcfs"]

    def test_same_work_completed_either_way(self):
        outcomes = {}
        for order in ("fcfs", "sjf"):
            sched = make_sched(order=order)
            for job in short_and_long():
                sched.submit(job)
            outcomes[order] = sched.run()
        assert outcomes["sjf"].n_completed == outcomes["fcfs"].n_completed == 4

    def test_arrival_times_still_respected(self):
        sched = make_sched(order="sjf")
        sched.submit(Job(0, cpu_workload("dgemm").scaled(2.0), 250.0, submit_time_s=0.0))
        # A shorter job arriving later cannot time-travel before its submit.
        sched.submit(Job(1, cpu_workload("stream").scaled(0.1), 220.0, submit_time_s=5.0))
        sched.run()
        assert sched.records[1].start_time_s >= 5.0

    def test_prediction_cached_per_workload(self):
        sched = make_sched(order="sjf", bound=600.0, n_nodes=2)
        for i in range(4):
            sched.submit(Job(i, cpu_workload("stream"), 220.0))
        sched.run()
        assert len(sched._predict_cache) == 1
