"""Scenario taxonomy and classification (paper Section 3.2 / Figure 3)."""

import pytest

from repro.core.scenario import (
    CPU_SCENARIOS,
    GPU_SCENARIOS,
    Scenario,
    classify_cpu,
    classify_gpu,
)
from repro.core.sweep import sweep_cpu_allocations, sweep_gpu_allocations
from repro.perfmodel.executor import execute_on_gpu, execute_on_host


class TestEnum:
    def test_six_categories(self):
        assert len(CPU_SCENARIOS) == 6
        assert [s.roman for s in CPU_SCENARIOS] == ["I", "II", "III", "IV", "V", "VI"]

    def test_gpu_reduced_taxonomy(self):
        assert GPU_SCENARIOS == (Scenario.I, Scenario.II, Scenario.III)

    def test_only_vi_violates_bound(self):
        assert not Scenario.VI.respects_bound
        assert all(s.respects_bound for s in CPU_SCENARIOS if s is not Scenario.VI)

    def test_descriptions_match_paper(self):
        assert "adequate power for both" in Scenario.I.description
        assert "lightly constrained" in Scenario.II.description
        assert "seriously constrained" in Scenario.IV.description


class TestClassifyCpu:
    """Classification against the paper's Figure 3 layout (SRA @ 240 W)."""

    BUDGET = 240.0

    def classify_at(self, ivb, sra, mem_w):
        r = execute_on_host(ivb.cpu, ivb.dram, sra.phases, self.BUDGET - mem_w, mem_w)
        return classify_cpu(r)

    def test_scenario_i_region(self, ivb, sra):
        # Paper: P_mem in [120, 132] W.
        assert self.classify_at(ivb, sra, 124.0) is Scenario.I

    def test_scenario_ii_region(self, ivb, sra):
        # Paper: P_mem in [132, 172] W (CPU in the DVFS range).
        assert self.classify_at(ivb, sra, 152.0) is Scenario.II

    def test_scenario_iii_region(self, ivb, sra):
        # Paper: P_mem in [68, 120] W (DRAM throttled).
        assert self.classify_at(ivb, sra, 90.0) is Scenario.III

    def test_scenario_iv_region(self, ivb, sra):
        # Paper: P_cpu in [40, 66] W -> P_mem around 176-188 W.
        assert self.classify_at(ivb, sra, 180.0) is Scenario.IV

    def test_scenario_v_region(self, ivb, sra):
        # Paper: P_mem below ~68 W (the DRAM floor).
        assert self.classify_at(ivb, sra, 50.0) is Scenario.V

    def test_scenario_vi_region(self, ivb, sra):
        # Paper: P_mem above ~200 W (CPU at its hardware floor).
        assert self.classify_at(ivb, sra, 210.0) is Scenario.VI

    def test_every_sweep_point_classified(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 240.0, step_w=8.0)
        assert all(isinstance(s, Scenario) for s in sweep.scenarios)

    def test_spans_are_contiguous(self, ivb, sra):
        # Along the memory axis each category forms one contiguous run —
        # the visual structure of Figure 3.
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 240.0, step_w=4.0)
        seen_runs: dict[Scenario, int] = {}
        prev = None
        for s in sweep.scenarios:
            if s is not prev:
                seen_runs[s] = seen_runs.get(s, 0) + 1
            prev = s
        assert all(count == 1 for count in seen_runs.values()), seen_runs


class TestClassifyGpu:
    def test_only_reduced_categories_appear(self, xp):
        from repro.workloads import gpu_workload

        for wl_name in ("sgemm", "gpu-stream", "minife", "cloverleaf"):
            wl = gpu_workload(wl_name)
            for cap in (130.0, 190.0, 250.0):
                sweep = sweep_gpu_allocations(xp, wl, cap, freq_stride=4)
                assert set(sweep.scenarios) <= set(GPU_SCENARIOS), wl_name

    def test_memory_bound_is_iii(self, xp, minife):
        r = execute_on_gpu(xp, minife.phases, 250.0)
        assert classify_gpu(r) is Scenario.III

    def test_compute_app_capped_is_ii(self, xp, sgemm):
        r = execute_on_gpu(xp, sgemm.phases, 200.0)
        assert classify_gpu(r) is Scenario.II

    def test_compute_app_uncapped_on_v_is_i(self, tv, sgemm):
        r = execute_on_gpu(tv, sgemm.phases, 290.0)
        assert classify_gpu(r) is Scenario.I
