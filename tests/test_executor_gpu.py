"""GPU executor: board-level cap with budget reclaim."""

import pytest

from repro.errors import PowerBoundError, SweepError
from repro.hardware.component import CappingMechanism
from repro.perfmodel.executor import execute_on_gpu


class TestCapEnforcement:
    def test_total_power_respects_cap(self, xp, sgemm):
        for cap in (130.0, 170.0, 210.0, 250.0, 290.0):
            r = execute_on_gpu(xp, sgemm.phases, cap)
            if r.respects_bound:
                assert r.total_power_w <= cap + 1e-6

    def test_out_of_range_cap_rejected(self, xp, sgemm):
        with pytest.raises(PowerBoundError):
            execute_on_gpu(xp, sgemm.phases, 80.0)

    def test_empty_phases_rejected(self, xp):
        with pytest.raises(SweepError):
            execute_on_gpu(xp, (), 250.0)

    def test_sgemm_unsaturated_at_300(self, xp, sgemm):
        # SGEMM demands more than 300 W: the cap binds even at the max.
        r = execute_on_gpu(xp, sgemm.phases, 300.0)
        assert r.phases[0].proc_mechanism in (
            CappingMechanism.DVFS,
            CappingMechanism.FLOOR,
        )

    def test_perf_monotone_in_cap(self, xp, sgemm):
        perfs = [
            execute_on_gpu(xp, sgemm.phases, cap).flops_rate
            for cap in (150.0, 200.0, 250.0, 300.0)
        ]
        assert all(b >= a - 1e-6 for a, b in zip(perfs, perfs[1:]))


class TestMemoryClock:
    def test_default_clock_is_nominal(self, xp, gpu_stream):
        r = execute_on_gpu(xp, gpu_stream.phases, 250.0)
        assert r.phases[0].mem_throttle == pytest.approx(1.0)

    def test_downclock_reduces_stream_bandwidth(self, xp, gpu_stream):
        nominal = execute_on_gpu(xp, gpu_stream.phases, 250.0)
        low = execute_on_gpu(xp, gpu_stream.phases, 250.0, xp.mem.min_mhz)
        assert low.bytes_rate < nominal.bytes_rate

    def test_reclaim_boosts_sm_clock_at_tight_cap(self, xp, gpu_stream):
        # At a starved cap, downclocking memory frees watts for the SMs.
        nominal = execute_on_gpu(xp, gpu_stream.phases, 130.0)
        low = execute_on_gpu(xp, gpu_stream.phases, 130.0, 4700.0)
        assert low.phases[0].proc_freq_ghz > nominal.phases[0].proc_freq_ghz

    def test_compute_app_insensitive_to_memory_clock_at_high_cap(self, xp, sgemm):
        a = execute_on_gpu(xp, sgemm.phases, 300.0)
        b = execute_on_gpu(xp, sgemm.phases, 300.0, 5000.0)
        # Downclocking memory never *hurts* SGEMM at a binding cap (it
        # reclaims watts) and bandwidth is not the bottleneck.
        assert b.flops_rate >= a.flops_rate - 1e-6


class TestResultShape:
    def test_board_power_accounted(self, xp, minife):
        r = execute_on_gpu(xp, minife.phases, 250.0)
        assert r.board_power_w == pytest.approx(xp.board_static_w)
        assert r.total_power_w == pytest.approx(
            r.proc_power_w + r.mem_power_w + xp.board_static_w
        )

    def test_mem_cap_records_allocation_estimate(self, xp, minife):
        r = execute_on_gpu(xp, minife.phases, 250.0, 5000.0)
        op = xp.mem.operating_point(5000.0)
        assert r.mem_cap_w == pytest.approx(xp.mem.allocated_power_w(op.freq_mhz))

    def test_duty_always_one_on_gpu(self, xp, minife):
        r = execute_on_gpu(xp, minife.phases, 150.0)
        assert all(p.proc_duty == 1.0 for p in r.phases)


class TestTitanV:
    def test_memory_bound_suite_on_v(self, tv, minife):
        r = execute_on_gpu(tv, minife.phases, 250.0)
        assert r.mem_busy > r.utilization  # memory bound on the V too

    def test_v_saturates_within_range(self, tv, sgemm):
        lo = execute_on_gpu(tv, sgemm.phases, 210.0).flops_rate
        hi = execute_on_gpu(tv, sgemm.phases, 290.0).flops_rate
        assert hi == pytest.approx(lo, rel=1e-6)  # flat: demand < 210 W
