"""Online feedback power shifting."""

import pytest

from repro.core.online import online_power_shift
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import ConfigurationError
from repro.workloads import cpu_workload, list_cpu_workloads


class TestConvergence:
    def test_memory_bound_converges_toward_memory(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 180.0)
        # The controller shifted watts toward memory relative to the
        # uniform start.
        assert result.allocation.mem_w > 90.0
        assert result.epochs <= 40

    def test_compute_bound_converges_toward_cpu(self, ivb, dgemm):
        result = online_power_shift(ivb.cpu, ivb.dram, dgemm, 180.0)
        assert result.allocation.proc_w > 90.0

    def test_clamp_stall_terminates_early(self, ivb, dgemm):
        # DGEMM pushes to the memory floor; the controller must notice the
        # clamp and stop rather than burning all epochs.
        result = online_power_shift(ivb.cpu, ivb.dram, dgemm, 180.0, max_epochs=40)
        assert result.epochs < 40

    def test_trajectory_recorded(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 180.0)
        assert len(result.trajectory) >= 1
        assert result.trajectory[0].mem_w == pytest.approx(90.0)
        assert result.search_cost_epochs == result.epochs

    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_near_oracle_for_whole_suite(self, ivb, name):
        wl = cpu_workload(name)
        budget = 200.0
        result = online_power_shift(ivb.cpu, ivb.dram, wl, budget)
        best = sweep_cpu_allocations(ivb.cpu, ivb.dram, wl, budget, step_w=4.0).perf_max
        assert result.performance >= 0.55 * best, name

    def test_budget_respected(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 160.0)
        assert result.allocation.total_w <= 160.0 + 1e-9


class TestValidation:
    def test_bad_fraction(self, ivb, stream):
        with pytest.raises(ConfigurationError):
            online_power_shift(
                ivb.cpu, ivb.dram, stream, 180.0, initial_mem_fraction=1.0
            )

    def test_bad_epochs(self, ivb, stream):
        with pytest.raises(ConfigurationError):
            online_power_shift(ivb.cpu, ivb.dram, stream, 180.0, max_epochs=0)

    def test_single_epoch_budget(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 180.0, max_epochs=1)
        assert result.epochs == 1
        assert result.performance > 0
