"""Online feedback power shifting."""

import pytest

from repro.core.online import online_power_shift
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import ConfigurationError
from repro.workloads import cpu_workload, list_cpu_workloads


class TestConvergence:
    def test_memory_bound_converges_toward_memory(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 180.0)
        # The controller shifted watts toward memory relative to the
        # uniform start.
        assert result.allocation.mem_w > 90.0
        assert result.epochs <= 40

    def test_compute_bound_converges_toward_cpu(self, ivb, dgemm):
        result = online_power_shift(ivb.cpu, ivb.dram, dgemm, 180.0)
        assert result.allocation.proc_w > 90.0

    def test_clamp_stall_terminates_early(self, ivb, dgemm):
        # DGEMM pushes to the memory floor; the controller must notice the
        # clamp and stop rather than burning all epochs.
        result = online_power_shift(ivb.cpu, ivb.dram, dgemm, 180.0, max_epochs=40)
        assert result.epochs < 40

    def test_trajectory_recorded(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 180.0)
        assert len(result.trajectory) >= 1
        assert result.trajectory[0].mem_w == pytest.approx(90.0)
        assert result.search_cost_epochs == result.epochs

    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_near_oracle_for_whole_suite(self, ivb, name):
        wl = cpu_workload(name)
        budget = 200.0
        result = online_power_shift(ivb.cpu, ivb.dram, wl, budget)
        best = sweep_cpu_allocations(ivb.cpu, ivb.dram, wl, budget, step_w=4.0).perf_max
        assert result.performance >= 0.55 * best, name

    def test_budget_respected(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 160.0)
        assert result.allocation.total_w <= 160.0 + 1e-9


class TestStepQuantum:
    """Direction flips halve the step; underflowing the quantum terminates."""

    def test_direction_flips_shrink_the_step(self, ivb, sra):
        result = online_power_shift(
            ivb.cpu, ivb.dram, sra, 180.0, initial_step_w=64.0, min_step_w=2.0
        )
        mems = [a.mem_w for a in result.trajectory]
        moves = [b - a for a, b in zip(mems, mems[1:])]
        flips = sum(
            1 for a, b in zip(moves, moves[1:]) if (a > 0) != (b > 0)
        )
        assert flips >= 1  # SRA overshoots, so the search must reverse
        # Every reversal halves the quantum: once the walk has flipped,
        # it never again moves as far as the first overshooting stride.
        first_flip = next(
            i for i, (a, b) in enumerate(zip(moves, moves[1:]))
            if (a > 0) != (b > 0)
        )
        assert all(
            abs(m) < abs(moves[first_flip])
            for m in moves[first_flip + 1:]
        )

    def test_quantum_underflow_terminates(self, ivb, sra):
        # Pinned: with a 64 W stride and a 2 W quantum, SRA's oscillation
        # halves the step below the quantum after 8 epochs.
        result = online_power_shift(
            ivb.cpu, ivb.dram, sra, 180.0, initial_step_w=64.0, min_step_w=2.0
        )
        assert result.epochs == 8
        assert result.trajectory[0].mem_w == pytest.approx(90.0)
        assert result.trajectory[1].mem_w == pytest.approx(154.0)
        assert result.trajectory[2].mem_w == pytest.approx(122.0)
        assert result.trajectory[3].mem_w == pytest.approx(90.0)

    def test_coarse_quantum_stops_at_first_flip(self, ivb, sra):
        # When the quantum equals the stride, the first halving
        # underflows immediately: the coarse run must terminate no later
        # than (and search strictly less than) the fine-quantum run.
        fine = online_power_shift(
            ivb.cpu, ivb.dram, sra, 180.0, initial_step_w=64.0, min_step_w=2.0
        )
        coarse = online_power_shift(
            ivb.cpu, ivb.dram, sra, 180.0, initial_step_w=64.0, min_step_w=64.0
        )
        assert coarse.epochs < fine.epochs
        assert coarse.epochs <= 4

    def test_floor_clamp_is_visible_in_trajectory(self, ivb, dgemm):
        # DGEMM walks into the DRAM floor: the final allocation sits
        # exactly on mem_floor_w and the clamp-stall breaks the loop.
        result = online_power_shift(
            ivb.cpu, ivb.dram, dgemm, 180.0, mem_floor_w=16.0
        )
        assert result.trajectory[-1].mem_w == pytest.approx(16.0)
        assert result.epochs == len(result.trajectory) + 1  # stalled epoch


class TestValidation:
    def test_bad_fraction(self, ivb, stream):
        with pytest.raises(ConfigurationError):
            online_power_shift(
                ivb.cpu, ivb.dram, stream, 180.0, initial_mem_fraction=1.0
            )

    def test_bad_epochs(self, ivb, stream):
        with pytest.raises(ConfigurationError):
            online_power_shift(ivb.cpu, ivb.dram, stream, 180.0, max_epochs=0)

    def test_single_epoch_budget(self, ivb, stream):
        result = online_power_shift(ivb.cpu, ivb.dram, stream, 180.0, max_epochs=1)
        assert result.epochs == 1
        assert result.performance > 0
