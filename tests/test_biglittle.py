"""Heterogeneous (big.LITTLE) node: hardware, executor, coordination."""

import pytest

from repro.core.coord_hetero import (
    HeteroAllocation,
    coord_biglittle,
    profile_biglittle,
    sweep_biglittle,
)
from repro.errors import (
    BudgetTooSmallError,
    ConfigurationError,
    InfeasibleBudgetError,
    SweepError,
)
from repro.hardware.biglittle import BigLittleNode, CoreCluster, biglittle_node
from repro.perfmodel.hetero import execute_on_biglittle
from repro.workloads import cpu_workload


@pytest.fixture(scope="module")
def node():
    return biglittle_node()


class TestHardware:
    def test_efficiency_ordering(self, node):
        # The defining property: little cores deliver more FLOPs per watt.
        little = node.little.domain
        big = node.big.domain
        little_eff = (
            little.n_cores * little.pstates.f_nom_ghz * little.flops_per_core_cycle
        ) / little.max_power_w
        big_eff = (
            big.n_cores * big.pstates.f_nom_ghz * big.flops_per_core_cycle
        ) / big.max_power_w
        assert little_eff > 1.3 * big_eff

    def test_big_faster_in_absolute_terms(self, node):
        little = node.little.domain
        big = node.big.domain
        assert (
            big.n_cores * big.pstates.f_nom_ghz * big.flops_per_core_cycle
            > 3 * little.n_cores * little.pstates.f_nom_ghz * little.flops_per_core_cycle
        )

    def test_gating(self, node):
        assert node.big.is_gated(0.5)
        assert not node.big.is_gated(1.5)
        assert not node.little.is_gated(node.little.gate_threshold_w)

    def test_gate_above_floor_rejected(self, node):
        with pytest.raises(ConfigurationError):
            CoreCluster(domain=node.big.domain, gate_threshold_w=5.0)

    def test_negative_gate_rejected(self, node):
        with pytest.raises(ConfigurationError):
            CoreCluster(domain=node.big.domain, gate_threshold_w=-1.0)

    def test_node_bounds(self, node):
        assert node.min_productive_power_w < 1.0
        assert node.max_power_w < 12.0


class TestHeteroExecutor:
    def test_full_power_uses_both_clusters(self, node):
        wl = cpu_workload("dgemm")
        both = execute_on_biglittle(node, wl.phases, 10.0, 2.0, 2.0)
        little_only = execute_on_biglittle(node, wl.phases, 0.0, 2.0, 2.0)
        big_only = execute_on_biglittle(node, wl.phases, 10.0, 0.0, 2.0)
        assert both.flops_rate > big_only.flops_rate > little_only.flops_rate

    def test_gated_cluster_draws_nothing(self, node):
        wl = cpu_workload("dgemm")
        little_only = execute_on_biglittle(node, wl.phases, 0.0, 2.0, 2.0)
        # Processor power is the little cluster alone: below its max.
        assert little_only.proc_power_w <= node.little.domain.max_power_w + 1e-9

    def test_both_gated_raises(self, node):
        wl = cpu_workload("dgemm")
        with pytest.raises(InfeasibleBudgetError):
            execute_on_biglittle(node, wl.phases, 0.0, 0.0, 2.0)

    def test_empty_phases_rejected(self, node):
        with pytest.raises(SweepError):
            execute_on_biglittle(node, (), 2.0, 1.0, 1.0)

    def test_caps_respected(self, node):
        wl = cpu_workload("mg")
        r = execute_on_biglittle(node, wl.phases, 2.0, 0.4, 1.2)
        assert r.proc_power_w <= 2.4 + 1e-6
        assert r.mem_power_w <= 1.2 + 1e-6

    def test_memory_throttling_applies(self, node):
        wl = cpu_workload("stream")
        free = execute_on_biglittle(node, wl.phases, 5.0, 1.0, 3.0)
        tight = execute_on_biglittle(node, wl.phases, 5.0, 1.0, 0.8)
        assert tight.bytes_rate < free.bytes_rate


class TestProfiling:
    def test_demand_ordering(self, node):
        crit = profile_biglittle(node, cpu_workload("dgemm"))
        assert crit.big_l1 > crit.little_l1
        assert crit.mem_l1 >= crit.mem_floor

    def test_memory_hungry_workload(self, node):
        stream = profile_biglittle(node, cpu_workload("stream"))
        dgemm = profile_biglittle(node, cpu_workload("dgemm"))
        assert stream.mem_l1 > dgemm.mem_l1


class TestCoordination:
    def test_below_threshold(self, node):
        crit = profile_biglittle(node, cpu_workload("stream"))
        with pytest.raises(BudgetTooSmallError):
            coord_biglittle(node, crit, 0.2, strict=True)
        fallback = coord_biglittle(node, crit, 0.2)
        assert fallback.big_w == 0.0

    def test_tiny_budget_gates_big(self, node):
        wl = cpu_workload("mg")
        crit = profile_biglittle(node, wl)
        alloc = coord_biglittle(node, crit, 1.2, workload=wl)
        assert alloc.big_w < node.big.gate_threshold_w

    def test_large_budget_wakes_big(self, node):
        wl = cpu_workload("dgemm")
        crit = profile_biglittle(node, wl)
        alloc = coord_biglittle(node, crit, 8.0, workload=wl)
        assert alloc.big_w >= node.big.gate_threshold_w

    def test_budget_respected(self, node):
        wl = cpu_workload("cg")
        crit = profile_biglittle(node, wl)
        for budget in (1.0, 2.5, 5.0, 9.0):
            alloc = coord_biglittle(node, crit, budget, workload=wl)
            assert alloc.total_w <= budget + 1e-6

    @pytest.mark.parametrize("name", ["dgemm", "stream", "mg", "cg"])
    def test_near_oracle_outside_crossover(self, node, name):
        wl = cpu_workload(name)
        crit = profile_biglittle(node, wl)
        for budget in (5.0, 7.0, 9.5):
            points = sweep_biglittle(node, wl, budget, step_w=0.25)
            best = max(p.performance for p in points)
            alloc = coord_biglittle(node, crit, budget, workload=wl)
            r = execute_on_biglittle(
                node, wl.phases, alloc.big_w, alloc.little_w, alloc.mem_w
            )
            assert wl.performance(r) >= 0.90 * best, (name, budget)

    def test_static_mode_works_without_workload(self, node):
        crit = profile_biglittle(node, cpu_workload("dgemm"))
        alloc = coord_biglittle(node, crit, 6.0)
        assert isinstance(alloc, HeteroAllocation)
        assert alloc.total_w <= 6.0 + 1e-9


class TestSweep:
    def test_oracle_gates_big_at_tiny_budget(self, node):
        wl = cpu_workload("cg")
        points = sweep_biglittle(node, wl, 1.0, step_w=0.25)
        best = max(points, key=lambda p: p.performance)
        assert best.allocation.big_w < node.big.gate_threshold_w

    def test_oracle_wakes_big_at_large_budget(self, node):
        wl = cpu_workload("dgemm")
        points = sweep_biglittle(node, wl, 8.0, step_w=0.5)
        best = max(points, key=lambda p: p.performance)
        assert best.allocation.big_w >= node.big.gate_threshold_w

    def test_bad_step_rejected(self, node):
        with pytest.raises(SweepError):
            sweep_biglittle(node, cpu_workload("cg"), 2.0, step_w=0.0)

    def test_infeasible_budget_rejected(self, node):
        with pytest.raises(SweepError):
            sweep_biglittle(node, cpu_workload("cg"), 0.2, step_w=0.1)
