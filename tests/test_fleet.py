"""The fleet battery: event core locked to the legacy schedulers.

Three layers of lockdown for the discrete-event rebuild of
``repro.sched``:

1. **Differential**: the event-driven ``run()`` must reproduce the
   legacy hand-rolled loops (kept verbatim as ``run_legacy()``) —
   `JobRecord` histories, `SchedulerStats`, and the per-job event logs —
   **bit-for-bit**, on both CPU platform registries, FCFS and
   rebalancing, with and without surplus reclaim, plus a hypothesis
   fuzz over shared job-mix/cluster-shape strategies.
2. **Properties**: no event dispatches out of timestamp order; charged
   power never exceeds the global bound at any event boundary; every
   arrived job reaches a terminal state; seeded traces replay
   identically (regeneration, re-simulation, and file round-trip).
3. **Chaos**: the event core under armed ``repro.faults`` plans (worker
   and RAPL kinds) classifies as identical/degraded/typed-error — never
   a silent wrong answer.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiler import profile_cpu_workload
from repro.core.parallel import SweepEngine
from repro.errors import ConfigurationError, SchedulerError
from repro.faults.contract import _run_check
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hardware.platforms import haswell_node, ivybridge_node
from repro.sched import (
    BudgetResplit,
    Cluster,
    EventKind,
    EventLoop,
    EventQueue,
    FleetSimulator,
    Job,
    JobArrival,
    JobCompletion,
    JobState,
    NodeWakeup,
    PowerBoundedScheduler,
    RebalancingScheduler,
)
from repro.sched.traces import (
    TraceJob,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
    read_trace,
    write_trace,
)
from repro.workloads import cpu_workload

from tests.conftest import cluster_shapes, fleet_traces, job_mixes

PLATFORMS = {"ivybridge": ivybridge_node, "haswell": haswell_node}

# Profiles are deterministic per (platform, workload): warm them once per
# module and inject into every scheduler under test (both legs of each
# differential pair see identical cache state).
_PROFILE_CACHE: dict[str, dict] = {}


def _profiles(platform: str) -> dict:
    if platform not in _PROFILE_CACHE:
        node = PLATFORMS[platform]()
        _PROFILE_CACHE[platform] = {
            name: profile_cpu_workload(node.cpu, node.dram, cpu_workload(name))
            for name in ("ft", "mg", "cg", "stream", "dgemm", "sra")
        }
    return _PROFILE_CACHE[platform]


def _snapshot(sched) -> dict:
    """Everything observable about a finished scheduler, plain data."""
    out = {}
    for job_id, r in sched.records.items():
        out[job_id] = (
            r.state,
            r.node_name,
            tuple(r.slot_indices),
            r.granted_budget_w,
            r.allocation,
            r.start_time_s,
            r.finish_time_s,
            r.performance,
            r.energy_j,
            r.reject_reason,
            tuple(r.events),
        )
    return out


def _run_pair(scheduler_cls, platform: str, jobs, *, n_nodes, bound, **kw):
    """The same submission stream through run() and run_legacy()."""
    results = []
    for runner in ("run", "run_legacy"):
        cluster = Cluster(
            node_factory=PLATFORMS[platform],
            n_nodes=n_nodes,
            global_bound_w=bound,
        )
        sched = scheduler_cls(cluster, **kw)
        sched._profile_cache.update(_profiles(platform))
        for job in jobs:
            sched.submit(job)
        stats = getattr(sched, runner)()
        results.append((sched, stats))
    return results


def _assert_bit_identical(scheduler_cls, platform, jobs, *, n_nodes, bound, **kw):
    (event_sched, event_stats), (legacy_sched, legacy_stats) = _run_pair(
        scheduler_cls, platform, jobs, n_nodes=n_nodes, bound=bound, **kw
    )
    assert event_stats == legacy_stats
    assert _snapshot(event_sched) == _snapshot(legacy_sched)
    return event_sched, event_stats


# ---------------------------------------------------------------------------
# deterministic differential scenarios
# ---------------------------------------------------------------------------

def _plain_mix():
    """Moderate asks, staggered arrivals, one threshold rejection."""
    return [
        Job(1, cpu_workload("ft"), 150.0, submit_time_s=0.0),
        Job(2, cpu_workload("mg"), 180.0, submit_time_s=0.0),
        Job(3, cpu_workload("cg"), 40.0, submit_time_s=2.0),   # below floor
        Job(4, cpu_workload("ft"), 200.0, submit_time_s=5.0),
        Job(5, cpu_workload("mg"), 120.0, submit_time_s=30.0),
    ]


def _reclaim_mix():
    """Asks far above maximum demand: surplus trim must engage."""
    return [
        Job(1, cpu_workload("ft"), 500.0, submit_time_s=0.0),
        Job(2, cpu_workload("cg"), 450.0, submit_time_s=1.0),
        Job(3, cpu_workload("mg"), 400.0, submit_time_s=8.0),
    ]


def _contention_mix():
    """A tight bound: two jobs drain the headroom below the third's
    productive threshold while a slot stays free, so the head is held
    ("holding" logs) until a completion releases power."""
    return [
        Job(1, cpu_workload("ft"), 200.0, submit_time_s=0.0),
        Job(2, cpu_workload("mg"), 180.0, submit_time_s=0.0),
        Job(3, cpu_workload("cg"), 150.0, submit_time_s=0.0),  # held at t=0
        Job(4, cpu_workload("ft"), 170.0, submit_time_s=1.5),
    ]


def _multinode_mix():
    return [
        Job(1, cpu_workload("ft"), 140.0, submit_time_s=0.0, n_nodes=2),
        Job(2, cpu_workload("mg"), 130.0, submit_time_s=0.0),
        Job(3, cpu_workload("cg"), 150.0, submit_time_s=4.0, n_nodes=3),
        Job(4, cpu_workload("ft"), 120.0, submit_time_s=6.0),
    ]


class TestDifferentialBattery:
    """run() == run_legacy(), bit for bit, both registries."""

    @pytest.mark.parametrize("platform", sorted(PLATFORMS))
    @pytest.mark.parametrize(
        "scheduler_cls", [PowerBoundedScheduler, RebalancingScheduler]
    )
    @pytest.mark.parametrize(
        "mix,n_nodes,bound",
        [
            (_plain_mix, 2, 500.0),
            (_reclaim_mix, 2, 800.0),
            (_contention_mix, 3, 320.0),
            (_multinode_mix, 3, 700.0),
        ],
        ids=["plain", "reclaim", "contention", "multinode"],
    )
    def test_bit_identical_histories(
        self, platform, scheduler_cls, mix, n_nodes, bound
    ):
        _assert_bit_identical(
            scheduler_cls, platform, mix(), n_nodes=n_nodes, bound=bound
        )

    @pytest.mark.parametrize("platform", sorted(PLATFORMS))
    def test_surplus_reclaim_engages_and_matches(self, platform):
        sched, stats = _assert_bit_identical(
            PowerBoundedScheduler, platform, _reclaim_mix(), n_nodes=2,
            bound=800.0,
        )
        assert stats.reclaimed_w_total > 0.0
        assert any("trimmed" in line for r in sched.records.values()
                   for line in r.events)

    @pytest.mark.parametrize("platform", sorted(PLATFORMS))
    def test_no_reclaim_when_asks_are_modest(self, platform):
        jobs = [
            Job(1, cpu_workload("mg"), 120.0, submit_time_s=0.0),
            Job(2, cpu_workload("cg"), 110.0, submit_time_s=1.0),
        ]
        _, stats = _assert_bit_identical(
            PowerBoundedScheduler, platform, jobs, n_nodes=2, bound=400.0
        )
        assert stats.reclaimed_w_total == 0.0

    def test_holding_logs_match(self):
        sched, _ = _assert_bit_identical(
            PowerBoundedScheduler, "ivybridge", _contention_mix(), n_nodes=3,
            bound=320.0,
        )
        assert any("holding" in line for r in sched.records.values()
                   for line in r.events)

    def test_sjf_order_matches(self):
        _assert_bit_identical(
            PowerBoundedScheduler, "ivybridge", _plain_mix(), n_nodes=2,
            bound=500.0, order="sjf",
        )

    def test_rebalancer_boosts_and_stale_events_match(self):
        sched, stats = _assert_bit_identical(
            RebalancingScheduler, "haswell",
            [
                Job(1, cpu_workload("ft"), 120.0, submit_time_s=0.0),
                Job(2, cpu_workload("mg"), 120.0, submit_time_s=0.0),
                Job(3, cpu_workload("cg"), 140.0, submit_time_s=2.0),
            ],
            n_nodes=2, bound=500.0,
        )
        # A boost re-times a completion, so the event queue held a stale
        # completion the core had to discard — the laziest invalidation
        # path is on the differential record too.
        assert stats.n_boosts > 0
        assert any("boosted" in line for r in sched.records.values()
                   for line in r.events)

    def test_elasticity_boost_order_matches(self):
        _assert_bit_identical(
            RebalancingScheduler, "ivybridge", _plain_mix(), n_nodes=3,
            bound=600.0, boost_order="elasticity",
        )

    def test_unschedulable_head_matches(self):
        jobs = [Job(1, cpu_workload("ft"), 300.0, submit_time_s=0.0, n_nodes=5)]
        sched, stats = _assert_bit_identical(
            PowerBoundedScheduler, "ivybridge", jobs, n_nodes=2, bound=500.0
        )
        assert stats.n_rejected == 1
        record = sched.records[1]
        assert "unschedulable" in (record.reject_reason or "")

    @settings(max_examples=15, deadline=None)
    @given(jobs=job_mixes(multi_node=True), shape=cluster_shapes())
    def test_fuzzed_mixes_fcfs(self, jobs, shape):
        platform = (
            "haswell" if shape["node_factory"] is haswell_node else "ivybridge"
        )
        _assert_bit_identical(
            PowerBoundedScheduler, platform, jobs,
            n_nodes=shape["n_nodes"], bound=shape["global_bound_w"],
        )

    @settings(max_examples=15, deadline=None)
    @given(jobs=job_mixes(multi_node=True), shape=cluster_shapes())
    def test_fuzzed_mixes_rebalancing(self, jobs, shape):
        platform = (
            "haswell" if shape["node_factory"] is haswell_node else "ivybridge"
        )
        _assert_bit_identical(
            RebalancingScheduler, platform, jobs,
            n_nodes=shape["n_nodes"], bound=shape["global_bound_w"],
        )


# ---------------------------------------------------------------------------
# the event core itself
# ---------------------------------------------------------------------------

class _RecordingHooks:
    """Minimal hook policy: records dispatches, never refills."""

    def __init__(self):
        self.seen = []

    def on_arrival(self, loop, event):
        self.seen.append(("arrival", event.time_s))

    def on_completion(self, loop, event):
        self.seen.append(("completion", event.time_s))

    def on_resplit(self, loop, event):
        self.seen.append(("resplit", event.time_s))

    def on_wakeup(self, loop, event):
        self.seen.append(("wakeup", event.time_s))

    def on_drain(self, loop):
        return False


class TestEventQueue:
    def test_orders_by_time_then_kind_then_fifo(self):
        q = EventQueue()
        q.push(JobArrival(5.0, job_id=1))
        q.push(JobCompletion(5.0, slot=0))
        q.push(NodeWakeup(5.0, tag="a"))
        q.push(BudgetResplit(5.0, interval_s=1.0))
        q.push(JobArrival(5.0, job_id=2))
        q.push(JobArrival(1.0, job_id=3))
        kinds = [type(q.pop()).__name__ for _ in range(5)]
        assert kinds == [
            "JobArrival",      # t=1 before everything at t=5
            "JobCompletion",   # completions first at equal time
            "BudgetResplit",   # then re-splits
            "JobArrival",      # then arrivals ...
            "JobArrival",
        ]
        last = q.pop()
        assert isinstance(last, NodeWakeup)  # wake-ups last
        assert q.pushed == 6 and q.popped == 6

    def test_fifo_among_exact_ties(self):
        q = EventQueue()
        for job_id in (7, 3, 9):
            q.push(JobArrival(2.0, job_id=job_id))
        assert [q.pop().job_id for _ in range(3)] == [7, 3, 9]

    def test_pop_empty_raises_typed(self):
        with pytest.raises(SchedulerError):
            EventQueue().pop()

    def test_peek_is_non_destructive(self):
        q = EventQueue()
        assert q.peek() is None
        q.push(JobArrival(1.0, job_id=1))
        assert q.peek() is q.peek()
        assert len(q) == 1

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_bad_timestamps_rejected(self, bad):
        with pytest.raises(SchedulerError):
            JobArrival(bad, job_id=1)

    def test_kind_priorities_are_pinned(self):
        assert EventKind.COMPLETION < EventKind.RESPLIT
        assert EventKind.RESPLIT < EventKind.ARRIVAL
        assert EventKind.ARRIVAL < EventKind.WAKEUP


class TestEventLoop:
    def test_dispatches_every_kind_to_its_hook(self):
        hooks = _RecordingHooks()
        loop = EventLoop(hooks)
        loop.schedule(JobArrival(1.0, job_id=1))
        loop.schedule(JobCompletion(2.0, slot=0))
        loop.schedule(BudgetResplit(3.0, interval_s=1.0))
        loop.wake_me_up_at(4.0, tag="check")
        n = loop.run()
        assert n == 4
        assert hooks.seen == [
            ("arrival", 1.0), ("completion", 2.0),
            ("resplit", 3.0), ("wakeup", 4.0),
        ]

    def test_observer_sees_every_event_after_its_hook(self):
        hooks = _RecordingHooks()
        observed = []

        def observer(loop, event):
            observed.append((type(event).__name__, len(hooks.seen)))

        loop = EventLoop(hooks, observer=observer)
        loop.schedule(JobArrival(1.0, job_id=1))
        loop.schedule(NodeWakeup(2.0))
        loop.run()
        # the hook had already appended when the observer fired
        assert observed == [("JobArrival", 1), ("NodeWakeup", 2)]

    def test_drain_hook_can_refill(self):
        class Refiller(_RecordingHooks):
            def __init__(self):
                super().__init__()
                self.refills = 0

            def on_drain(self, loop):
                if self.refills >= 2:
                    return False
                self.refills += 1
                loop.schedule(NodeWakeup(float(self.refills)))
                return True

        hooks = Refiller()
        assert EventLoop(hooks).run() == 2
        assert hooks.seen == [("wakeup", 1.0), ("wakeup", 2.0)]


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

class TestEventProperties:
    @settings(max_examples=10, deadline=None)
    @given(jobs=job_mixes(), shape=cluster_shapes())
    def test_dispatch_order_and_bound_at_event_boundaries(self, jobs, shape):
        cluster = Cluster(**shape)
        sched = RebalancingScheduler(cluster)
        platform = (
            "haswell" if shape["node_factory"] is haswell_node else "ivybridge"
        )
        sched._profile_cache.update(_profiles(platform))
        for job in jobs:
            sched.submit(job)
        times = []

        def observer(loop, event):
            times.append(event.time_s)
            assert cluster.charged_w <= shape["global_bound_w"] + 1e-6

        sched.run(observer=observer)
        assert times == sorted(times)

    @settings(max_examples=10, deadline=None)
    @given(jobs=job_mixes(), shape=cluster_shapes())
    def test_every_arrived_job_reaches_terminal_state(self, jobs, shape):
        cluster = Cluster(**shape)
        sched = PowerBoundedScheduler(cluster)
        platform = (
            "haswell" if shape["node_factory"] is haswell_node else "ivybridge"
        )
        sched._profile_cache.update(_profiles(platform))
        for job in jobs:
            sched.submit(job)
        stats = sched.run()
        terminal = {JobState.COMPLETED, JobState.REJECTED}
        assert all(r.state in terminal for r in sched.records.values())
        assert stats.n_completed + stats.n_rejected == len(jobs)


class TestFleetProperties:
    @settings(max_examples=8, deadline=None)
    @given(trace=fleet_traces(), n_nodes=st.integers(2, 6),
           bound=st.sampled_from((400.0, 900.0, 1600.0)))
    def test_fleet_invariants(self, trace, n_nodes, bound):
        sim = FleetSimulator(
            trace, n_nodes=n_nodes, global_bound_w=bound,
            resplit_interval_s=10.0,
        )
        times = []

        def observer(loop, event):
            times.append(event.time_s)
            assert sim.charged_w <= bound + 1e-6

        stats = sim.run(observer=observer)
        assert times == sorted(times)
        assert stats.peak_charged_w <= bound + 1e-6
        terminal = {JobState.COMPLETED, JobState.REJECTED}
        assert all(r.state in terminal for r in sim.records.values())
        assert stats.n_completed + stats.n_rejected == stats.n_jobs
        for r in sim.records.values():
            if r.state is JobState.COMPLETED:
                assert r.start_s is not None and r.finish_s is not None
                assert r.start_s >= r.job.submit_time_s - 1e-9
                assert r.finish_s <= stats.makespan_s + 1e-9
                assert r.grant_w <= r.job.budget_w + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(trace=fleet_traces(), n_nodes=st.integers(2, 5))
    def test_fleet_replays_identically(self, trace, n_nodes):
        runs = []
        for _ in range(2):
            sim = FleetSimulator(
                trace, n_nodes=n_nodes, global_bound_w=800.0,
                resplit_interval_s=7.0,
            )
            stats = sim.run()
            runs.append((stats, {
                j: (r.state, r.start_s, r.finish_s, r.grant_w, r.energy_j)
                for j, r in sim.records.items()
            }))
        assert runs[0] == runs[1]

    def test_resplit_engages_under_pressure(self):
        trace = bursty_trace(
            n_jobs=30, burst_size=8, gap_s=20.0, seed=11,
            budget_levels=(120.0, 160.0, 240.0),
        )
        sim = FleetSimulator(
            trace, n_nodes=4, global_bound_w=520.0, resplit_interval_s=5.0
        )
        stats = sim.run()
        assert stats.n_resplits > 0
        assert stats.n_retimed > 0          # grants actually moved
        assert stats.n_missed_budget > 0    # and power blocked someone
        assert stats.peak_charged_w <= 520.0 + 1e-6

    def test_rounds_resolve_through_the_batch_kernel(self):
        engine = SweepEngine(n_jobs=1)
        trace = poisson_trace(n_jobs=40, rate_per_s=4.0, seed=3)
        sim = FleetSimulator(
            trace, n_nodes=8, global_bound_w=2000.0, engine=engine
        )
        stats = sim.run()
        assert stats.n_kernel_passes > 0
        # Far fewer kernel passes than per-node scalar sweeps: grouped
        # rounds + the quantized-grant memo keep executions sublinear.
        assert stats.n_kernel_passes <= stats.n_completed
        snapshot = engine.stats_snapshot()
        assert snapshot["cache"]["hits"] > 0


class TestTraces:
    @settings(max_examples=10, deadline=None)
    @given(trace=fleet_traces())
    def test_round_trips_through_the_file_format(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "t.trace"
        write_trace(path, trace)
        assert read_trace(path) == trace

    def test_generators_are_seed_deterministic(self):
        for gen, kw in (
            (poisson_trace, dict(n_jobs=50, rate_per_s=2.0)),
            (bursty_trace, dict(n_jobs=50, burst_size=4, gap_s=5.0)),
            (diurnal_trace, dict(n_jobs=50, base_rate_per_s=0.5,
                                 peak_rate_per_s=3.0, period_s=300.0)),
        ):
            assert gen(seed=123, **kw) == gen(seed=123, **kw)
            assert gen(seed=123, **kw) != gen(seed=124, **kw)

    def test_arrivals_are_sorted_and_positive(self):
        trace = diurnal_trace(
            n_jobs=200, base_rate_per_s=0.2, peak_rate_per_s=5.0,
            period_s=600.0, seed=9,
        )
        times = [j.submit_time_s for j in trace]
        assert times == sorted(times)
        assert all(t >= 0.0 and math.isfinite(t) for t in times)
        assert len({j.job_id for j in trace}) == len(trace)

    def test_rejects_malformed_files(self, tmp_path):
        missing_header = tmp_path / "bad1.trace"
        missing_header.write_text("0,ft,100.0,0.0\n")
        with pytest.raises(ConfigurationError):
            read_trace(missing_header)
        bad_fields = tmp_path / "bad2.trace"
        bad_fields.write_text("# repro-trace v1\n0,ft,100.0\n")
        with pytest.raises(ConfigurationError):
            read_trace(bad_fields)
        bad_value = tmp_path / "bad3.trace"
        bad_value.write_text("# repro-trace v1\n0,ft,-5.0,0.0\n")
        with pytest.raises(ConfigurationError):
            read_trace(bad_value)
        with pytest.raises(ConfigurationError):
            read_trace(tmp_path / "does-not-exist.trace")

    def test_generator_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_trace(n_jobs=0, rate_per_s=1.0, seed=1)
        with pytest.raises(ConfigurationError):
            poisson_trace(n_jobs=5, rate_per_s=0.0, seed=1)
        with pytest.raises(ConfigurationError):
            bursty_trace(n_jobs=5, burst_size=0, gap_s=1.0, seed=1)
        with pytest.raises(ConfigurationError):
            diurnal_trace(n_jobs=5, base_rate_per_s=2.0, peak_rate_per_s=1.0,
                          period_s=60.0, seed=1)
        with pytest.raises(ConfigurationError):
            TraceJob(job_id=0, workload="ft", budget_w=0.0, submit_time_s=0.0)


class TestFleetValidation:
    def test_constructor_rejects_bad_shapes(self):
        trace = poisson_trace(n_jobs=3, rate_per_s=1.0, seed=1)
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=0, global_bound_w=500.0)
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=4, global_bound_w=0.0)
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=4, global_bound_w=500.0,
                           grant_quantum_w=0.0)
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=4, global_bound_w=500.0,
                           resplit_interval_s=-1.0)
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=4, global_bound_w=500.0,
                           profiles=("epyc",))
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=4, global_bound_w=500.0,
                           profiles=())

    def test_duplicate_job_ids_rejected(self):
        trace = [
            TraceJob(job_id=1, workload="ft", budget_w=120.0, submit_time_s=0.0),
            TraceJob(job_id=1, workload="mg", budget_w=120.0, submit_time_s=1.0),
        ]
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=2, global_bound_w=500.0)

    def test_unknown_workload_rejected(self):
        trace = [
            TraceJob(job_id=1, workload="nope", budget_w=120.0, submit_time_s=0.0)
        ]
        with pytest.raises(ConfigurationError):
            FleetSimulator(trace, n_nodes=2, global_bound_w=500.0)

    def test_heterogeneous_profiles_cycle(self):
        trace = poisson_trace(n_jobs=6, rate_per_s=2.0, seed=5)
        sim = FleetSimulator(trace, n_nodes=5, global_bound_w=1500.0)
        assert [n.profile for n in sim.nodes] == [
            "ivybridge", "haswell", "ivybridge", "haswell", "ivybridge"
        ]
        stats = sim.run()
        profiles_used = {
            r.profile for r in sim.records.values()
            if r.state is JobState.COMPLETED
        }
        assert stats.n_completed > 0
        assert len(profiles_used) > 1  # both registries actually ran jobs

    def test_below_floor_ask_gets_typed_reason(self):
        trace = [
            TraceJob(job_id=1, workload="ft", budget_w=30.0, submit_time_s=0.0)
        ]
        sim = FleetSimulator(trace, n_nodes=1, global_bound_w=500.0)
        stats = sim.run()
        assert stats.n_rejected == 1
        assert "productive floor" in (sim.records[1].reject_reason or "")


# ---------------------------------------------------------------------------
# chaos: the event core under armed fault plans
# ---------------------------------------------------------------------------

def _worker_plan(kind: FaultKind) -> FaultPlan:
    return FaultPlan(
        seed=17,
        specs=(
            FaultSpec(site="parallel.worker", kind=kind, probability=0.35,
                      amplitude=0.5),
        ),
        max_attempts=3,
        backoff_base_s=0.001,
    )


def _rapl_plan(kind: FaultKind) -> FaultPlan:
    return FaultPlan(
        seed=23,
        specs=(
            FaultSpec(site="rapl.read", kind=kind, probability=0.4,
                      amplitude=0.3),
        ),
        max_attempts=3,
        backoff_base_s=0.001,
    )


_CHAOS_TRACE = poisson_trace(n_jobs=16, rate_per_s=2.0, seed=77)


def _fleet_op():
    """Fresh engine + simulator per leg, comparable FleetStats result."""
    engine = SweepEngine(n_jobs=1)
    sim = FleetSimulator(
        _CHAOS_TRACE, n_nodes=3, global_bound_w=700.0,
        resplit_interval_s=5.0, engine=engine,
    )
    return sim.run(), None


def _scheduler_op():
    """The legacy policies on the event core (RAPL flows through here)."""
    cluster = Cluster(
        node_factory=ivybridge_node, n_nodes=2, global_bound_w=500.0
    )
    sched = RebalancingScheduler(cluster, engine=SweepEngine(n_jobs=1))
    for job in _plain_mix():
        sched.submit(job)
    stats = sched.run()
    return (stats, _snapshot(sched)), None


class TestFleetChaos:
    """Armed plans: identical/degraded/typed-error, never a silent lie."""

    @pytest.mark.parametrize(
        "kind", [FaultKind.WORKER_CRASH, FaultKind.WORKER_TIMEOUT]
    )
    def test_fleet_under_worker_faults(self, kind):
        check = _run_check("fleet.run", _fleet_op, _worker_plan(kind))
        assert check.ok, check.detail
        assert check.outcome in ("identical", "degraded", "typed-error")

    @pytest.mark.parametrize(
        "kind", [FaultKind.DROPOUT, FaultKind.STUCK, FaultKind.WRAP_JUMP]
    )
    def test_event_core_under_rapl_faults(self, kind):
        check = _run_check("sched.run", _scheduler_op, _rapl_plan(kind))
        assert check.ok, check.detail
        assert check.outcome in ("identical", "degraded", "typed-error")

    def test_fleet_under_combined_plan(self):
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(site="parallel.worker", kind=FaultKind.WORKER_CRASH,
                          probability=0.25, amplitude=0.5),
                FaultSpec(site="rapl.read", kind=FaultKind.DROPOUT,
                          probability=0.25, amplitude=0.5),
            ),
            max_attempts=3,
            backoff_base_s=0.001,
        )
        for name, op in (("fleet.run", _fleet_op), ("sched.run", _scheduler_op)):
            check = _run_check(name, op, plan)
            assert check.ok, f"{name}: {check.detail}"
            assert check.outcome in ("identical", "degraded", "typed-error")
