"""Power-bounded batch scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SchedulerError
from repro.hardware.platforms import ivybridge_node
from repro.sched import Cluster, Job, JobState, PowerBoundedScheduler
from repro.workloads import cpu_workload, gpu_workload

from tests.conftest import cluster_shapes


def make_cluster(n_nodes=2, bound=500.0):
    return Cluster(node_factory=ivybridge_node, n_nodes=n_nodes, global_bound_w=bound)


class TestCluster:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            Cluster(node_factory=ivybridge_node, n_nodes=0, global_bound_w=100.0)

    @pytest.mark.parametrize("n_nodes", [0, -1, -100])
    def test_non_positive_node_count_rejected(self, n_nodes):
        with pytest.raises(ConfigurationError):
            Cluster(
                node_factory=ivybridge_node,
                n_nodes=n_nodes,
                global_bound_w=100.0,
            )

    @pytest.mark.parametrize("bound", [0.0, -1.0, -500.0, float("nan")])
    def test_non_positive_bound_rejected(self, bound):
        # Regression: 0.0 W used to construct successfully (watts() only
        # checks non-negativity), leaving a cluster no job could ever be
        # charged against.  The whole non-positive range must raise the
        # typed ConfigurationError (UnitError subclasses it).
        with pytest.raises(ConfigurationError):
            Cluster(
                node_factory=ivybridge_node, n_nodes=2, global_bound_w=bound
            )

    @settings(max_examples=20, deadline=None)
    @given(shape=cluster_shapes())
    def test_valid_shapes_always_construct(self, shape):
        cluster = Cluster(**shape)
        assert len(cluster.slots) == shape["n_nodes"]
        assert cluster.headroom_w == shape["global_bound_w"]

    def test_charge_release_cycle(self):
        cluster = make_cluster()
        slot = cluster.free_slot()
        cluster.charge(slot, 200.0, job_id=1)
        assert cluster.charged_w == 200.0
        assert cluster.headroom_w == 300.0
        assert cluster.release(slot) == 200.0
        assert cluster.charged_w == 0.0

    def test_double_charge_rejected(self):
        cluster = make_cluster()
        slot = cluster.free_slot()
        cluster.charge(slot, 100.0, job_id=1)
        with pytest.raises(SchedulerError):
            cluster.charge(slot, 100.0, job_id=2)

    def test_overcommit_rejected(self):
        cluster = make_cluster(bound=150.0)
        slot = cluster.free_slot()
        with pytest.raises(SchedulerError):
            cluster.charge(slot, 200.0, job_id=1)

    def test_release_idle_rejected(self):
        cluster = make_cluster()
        with pytest.raises(SchedulerError):
            cluster.release(cluster.slots[0])

    def test_free_slot_exhaustion(self):
        cluster = make_cluster(n_nodes=1)
        cluster.charge(cluster.free_slot(), 100.0, job_id=1)
        assert cluster.free_slot() is None


class TestJobs:
    def test_gpu_job_rejected_at_submit(self):
        sched = PowerBoundedScheduler(make_cluster())
        with pytest.raises(SchedulerError):
            sched.submit(Job(1, gpu_workload("sgemm"), 250.0))

    def test_duplicate_id_rejected(self):
        sched = PowerBoundedScheduler(make_cluster())
        sched.submit(Job(1, cpu_workload("stream"), 200.0))
        with pytest.raises(SchedulerError):
            sched.submit(Job(1, cpu_workload("stream"), 200.0))

    def test_negative_submit_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(1, cpu_workload("stream"), 200.0, submit_time_s=-1.0)


class TestScheduling:
    def test_all_jobs_complete(self):
        sched = PowerBoundedScheduler(make_cluster(n_nodes=2, bound=600.0))
        for i, name in enumerate(("stream", "dgemm", "mg")):
            sched.submit(Job(i, cpu_workload(name), 250.0))
        stats = sched.run()
        assert stats.n_completed == 3
        assert stats.n_rejected == 0
        assert stats.makespan_s > 0

    def test_unproductive_budget_rejected(self):
        sched = PowerBoundedScheduler(make_cluster())
        sched.submit(Job(1, cpu_workload("dgemm"), 60.0))  # below threshold
        stats = sched.run()
        assert stats.n_rejected == 1
        record = sched.records[1]
        assert record.state is JobState.REJECTED
        assert "threshold" in record.reject_reason

    def test_surplus_reclaimed(self):
        sched = PowerBoundedScheduler(make_cluster(bound=1000.0))
        sched.submit(Job(1, cpu_workload("stream"), 400.0))  # far above demand
        stats = sched.run()
        assert stats.reclaimed_w_total > 100.0
        record = sched.records[1]
        # The grant was trimmed to the application's maximum demand.
        assert record.granted_budget_w < 400.0

    def test_global_bound_never_exceeded(self):
        sched = PowerBoundedScheduler(make_cluster(n_nodes=4, bound=500.0))
        for i in range(6):
            sched.submit(Job(i, cpu_workload("dgemm"), 240.0))
        stats = sched.run()
        assert stats.peak_charged_w <= 500.0 + 1e-9
        assert stats.n_completed == 6

    def test_power_gating_queues_jobs(self):
        # Two nodes but power for only one job at a time.
        sched = PowerBoundedScheduler(make_cluster(n_nodes=2, bound=240.0))
        sched.submit(Job(0, cpu_workload("dgemm"), 230.0))
        sched.submit(Job(1, cpu_workload("dgemm"), 230.0))
        stats = sched.run()
        assert stats.n_completed == 2
        r0, r1 = sched.records[0], sched.records[1]
        # The second job waited for the first to release its power.
        assert r1.start_time_s >= r0.finish_time_s - 1e-9

    def test_fcfs_order(self):
        sched = PowerBoundedScheduler(make_cluster(n_nodes=1, bound=300.0))
        sched.submit(Job(0, cpu_workload("stream"), 220.0, submit_time_s=0.0))
        sched.submit(Job(1, cpu_workload("mg"), 220.0, submit_time_s=1.0))
        sched.run()
        assert sched.records[0].start_time_s <= sched.records[1].start_time_s

    def test_arrival_times_respected(self):
        sched = PowerBoundedScheduler(make_cluster())
        sched.submit(Job(0, cpu_workload("stream"), 220.0, submit_time_s=100.0))
        sched.run()
        assert sched.records[0].start_time_s >= 100.0

    def test_coordinated_allocation_recorded(self):
        sched = PowerBoundedScheduler(make_cluster())
        sched.submit(Job(0, cpu_workload("stream"), 200.0))
        sched.run()
        record = sched.records[0]
        assert record.allocation is not None
        assert record.allocation.total_w <= record.granted_budget_w + 1e-9
        assert record.performance > 0
        assert record.energy_j > 0

    def test_profile_cache_reused(self):
        sched = PowerBoundedScheduler(make_cluster(bound=1000.0))
        for i in range(3):
            sched.submit(Job(i, cpu_workload("stream"), 220.0))
        sched.run()
        assert set(sched._profile_cache) == {"stream"}

    def test_stats_wait_and_turnaround(self):
        sched = PowerBoundedScheduler(make_cluster(n_nodes=1, bound=300.0))
        sched.submit(Job(0, cpu_workload("stream"), 220.0))
        sched.submit(Job(1, cpu_workload("stream"), 220.0))
        stats = sched.run()
        assert stats.mean_wait_s > 0  # second job queued behind the first
        assert sched.records[1].turnaround_s > sched.records[0].turnaround_s
        assert stats.throughput_jobs_per_hour > 0
