"""Node composition and the Table 2 platform presets."""

import pytest

from repro.errors import ConfigurationError, UnknownPlatformError
from repro.hardware.node import ComputeNode
from repro.hardware.platforms import (
    PLATFORMS,
    get_platform,
    haswell_node,
    ivybridge_node,
    list_platforms,
    titan_v_card,
    titan_xp_card,
)


class TestNode:
    def test_empty_name_rejected(self, ivb):
        with pytest.raises(ConfigurationError):
            ComputeNode(name="", cpu=ivb.cpu, dram=ivb.dram)

    def test_host_bounds(self, ivb):
        assert ivb.host_floor_power_w == pytest.approx(
            ivb.cpu.floor_power_w + ivb.dram.floor_power_w
        )
        assert ivb.host_max_power_w > ivb.host_floor_power_w

    def test_gpu_accessor_out_of_range(self, ivb):
        with pytest.raises(ConfigurationError):
            ivb.gpu(0)
        with pytest.raises(ConfigurationError):
            ivb.nvml_device(0)

    def test_gpu_host_node_has_nvml(self):
        node = get_platform("titan-xp-host")
        assert node.gpu(0).name == "titan-xp"
        assert node.nvml_device(0).card is node.gpu(0)

    def test_nodes_have_rapl(self, ivb):
        assert ivb.rapl.domains()


class TestRegistry:
    def test_all_table2_platforms_present(self):
        for name in ("ivybridge", "haswell", "titan-xp", "titan-v"):
            assert name in list_platforms()

    def test_unknown_platform_raises(self):
        with pytest.raises(UnknownPlatformError):
            get_platform("knl")

    def test_factories_return_fresh_instances(self):
        assert get_platform("ivybridge") is not get_platform("ivybridge")

    def test_registry_names_match(self):
        assert set(list_platforms()) == set(PLATFORMS)


class TestPresetParameters:
    def test_ivybridge_table2(self):
        node = ivybridge_node()
        assert node.cpu.n_cores == 20  # 2 x 10-core
        assert node.cpu.pstates.f_min_ghz == pytest.approx(1.2)
        assert node.cpu.pstates.f_nom_ghz == pytest.approx(2.5)

    def test_haswell_table2(self):
        node = haswell_node()
        assert node.cpu.n_cores == 24  # 2 x 12-core
        assert node.cpu.pstates.f_nom_ghz == pytest.approx(2.3)

    def test_ddr4_more_efficient_than_ddr3(self):
        ddr3 = ivybridge_node().dram
        ddr4 = haswell_node().dram
        # DDR4: more bandwidth for less power (paper Section 3.1).
        assert ddr4.peak_bw_gbps > ddr3.peak_bw_gbps
        assert ddr4.max_power_w < ddr3.max_power_w

    def test_gpu_cap_ranges(self):
        xp = titan_xp_card()
        assert xp.default_cap_w == 250.0  # thermal spec
        assert xp.max_cap_w == 300.0  # user-settable maximum

    def test_titan_v_smaller_power_ranges(self):
        xp, tv = titan_xp_card(), titan_v_card()
        # HBM2 gives a smaller DRAM power range than GDDR5X (Section 4).
        xp_range = xp.mem.max_power_w - xp.mem.min_power_w
        tv_range = tv.mem.max_power_w - tv.mem.min_power_w
        assert tv_range < xp_range
        assert tv.max_power_w < xp.max_power_w

    def test_cpu_floor_is_48w_on_ivybridge(self):
        # Paper: "a minimum hardware determined power of 48 Watts".
        assert ivybridge_node().cpu.floor_power_w == pytest.approx(48.0)
