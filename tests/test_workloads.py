"""Workload abstraction, suites, and registry."""

import pytest

from repro.errors import ConfigurationError, UnknownWorkloadError
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.perfmodel.phase import Phase
from repro.workloads import (
    MetricKind,
    Workload,
    WorkloadClass,
    cpu_workload,
    get_workload,
    gpu_workload,
    list_cpu_workloads,
    list_gpu_workloads,
    list_workloads,
)


def simple_phase():
    return Phase(
        name="p", flops=1e9, bytes_moved=1e10, activity=0.5,
        compute_efficiency=0.1, memory_efficiency=0.6,
    )


class TestWorkloadValidation:
    def test_bad_device_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload(
                name="x", suite="s", description="d", device="tpu",
                workload_class=WorkloadClass.MIXED, phases=(simple_phase(),),
                metric=MetricKind.GFLOPS,
            )

    def test_no_phases_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload(
                name="x", suite="s", description="d", device="cpu",
                workload_class=WorkloadClass.MIXED, phases=(),
                metric=MetricKind.GFLOPS,
            )

    def test_gups_requires_work_units(self):
        with pytest.raises(ConfigurationError, match="work_units"):
            Workload(
                name="x", suite="s", description="d", device="cpu",
                workload_class=WorkloadClass.MIXED, phases=(simple_phase(),),
                metric=MetricKind.GUPS,
            )

    def test_scaled_workload(self):
        wl = cpu_workload("sra").scaled(2.0)
        assert wl.work_units == pytest.approx(cpu_workload("sra").work_units * 2)
        assert wl.total_bytes == pytest.approx(cpu_workload("sra").total_bytes * 2)

    def test_scaling_preserves_performance(self, ivb):
        wl = cpu_workload("stream")
        r1 = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 1000.0, 1000.0)
        wl2 = wl.scaled(3.0)
        r2 = execute_on_host(ivb.cpu, ivb.dram, wl2.phases, 1000.0, 1000.0)
        assert wl.performance(r1) == pytest.approx(wl2.performance(r2))


class TestTable3Suites:
    def test_cpu_suite_complete(self):
        # Table 3, top half: the 11 CPU benchmarks.
        assert set(list_cpu_workloads()) == {
            "sra", "stream", "dgemm", "bt", "sp", "lu", "ep", "is", "cg", "ft", "mg",
        }

    def test_gpu_suite_complete(self):
        # Table 3, bottom half: the 6 GPU benchmarks.
        assert set(list_gpu_workloads()) == {
            "sgemm", "gpu-stream", "cufft", "minife", "cloverleaf", "hpcg",
        }

    def test_devices_consistent(self):
        for name in list_cpu_workloads():
            assert cpu_workload(name).device == "cpu"
        for name in list_gpu_workloads():
            assert gpu_workload(name).device == "gpu"

    def test_class_assignments_from_table3(self):
        assert cpu_workload("dgemm").workload_class is WorkloadClass.COMPUTE_INTENSIVE
        assert cpu_workload("stream").workload_class is WorkloadClass.MEMORY_INTENSIVE
        assert cpu_workload("sra").workload_class is WorkloadClass.RANDOM_ACCESS
        assert cpu_workload("sp").workload_class is WorkloadClass.MIXED
        assert gpu_workload("sgemm").workload_class is WorkloadClass.COMPUTE_INTENSIVE
        assert gpu_workload("minife").workload_class is WorkloadClass.MEMORY_INTENSIVE

    def test_intensity_ordering(self):
        # Compute-intensive codes have far higher FLOP/byte than random ones.
        assert cpu_workload("dgemm").intensity > 10.0
        assert cpu_workload("ep").intensity > cpu_workload("dgemm").intensity
        assert cpu_workload("stream").intensity < 0.1
        assert cpu_workload("sra").intensity < 0.01

    def test_multi_phase_pseudo_applications(self):
        for name in ("bt", "sp", "lu", "ft", "mg"):
            assert len(cpu_workload(name).phases) >= 2, name

    def test_kernel_benchmarks_single_phase(self):
        for name in ("sra", "stream", "dgemm", "ep"):
            assert len(cpu_workload(name).phases) == 1, name

    def test_lookup_case_insensitive(self):
        assert cpu_workload("DGEMM").name == "dgemm"

    def test_unknown_lookup_raises(self):
        with pytest.raises(UnknownWorkloadError):
            cpu_workload("linpack")
        with pytest.raises(UnknownWorkloadError):
            gpu_workload("dgemm")


class TestRegistry:
    def test_union(self):
        assert set(list_workloads()) == set(list_cpu_workloads()) | set(
            list_gpu_workloads()
        )

    def test_device_filter(self):
        assert set(list_workloads("cpu")) == set(list_cpu_workloads())
        assert set(list_workloads("gpu")) == set(list_gpu_workloads())

    def test_bad_filter(self):
        with pytest.raises(UnknownWorkloadError):
            list_workloads("fpga")

    def test_get_workload_spans_suites(self):
        assert get_workload("mg").device == "cpu"
        assert get_workload("hpcg").device == "gpu"

    def test_get_workload_unknown(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("nope")


class TestMetrics:
    def test_stream_reports_gbps(self, ivb):
        wl = cpu_workload("stream")
        r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 1000.0, 1000.0)
        assert wl.performance(r) == pytest.approx(r.bytes_rate / 1e9)
        assert wl.metric_unit == "GB/s"

    def test_dgemm_reports_gflops(self, ivb):
        wl = cpu_workload("dgemm")
        r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 1000.0, 1000.0)
        assert wl.performance(r) == pytest.approx(r.flops_rate / 1e9)

    def test_sra_reports_gups(self, ivb):
        wl = cpu_workload("sra")
        r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 1000.0, 1000.0)
        assert wl.performance(r) == pytest.approx(wl.work_units / r.elapsed_s / 1e9)
        assert wl.metric_unit == "GUP/s"

    def test_npb_reports_mops(self, ivb):
        wl = cpu_workload("mg")
        r = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 1000.0, 1000.0)
        assert wl.performance(r) == pytest.approx(wl.total_flops / r.elapsed_s / 1e6)

    def test_gpu_stream_reasonable_bandwidth(self, xp):
        wl = gpu_workload("gpu-stream")
        r = execute_on_gpu(xp, wl.phases, 300.0)
        # Near the card's efficient streaming bandwidth, not above peak.
        assert 300.0 < wl.performance(r) <= 480.0
