"""Golden-section optimum search vs the exhaustive sweep oracle."""

import pytest

from repro.core.optimize import golden_section_optimal
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import SweepError
from repro.workloads import cpu_workload, list_cpu_workloads


class TestGoldenSection:
    @pytest.mark.parametrize("name", list_cpu_workloads())
    def test_matches_sweep_across_suite(self, ivb, name):
        # Also validates the unimodality assumption workload by workload.
        wl = cpu_workload(name)
        for budget in (176.0, 208.0, 240.0):
            gs = golden_section_optimal(ivb.cpu, ivb.dram, wl, budget, tol_w=2.0)
            sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, wl, budget, step_w=2.0)
            assert gs.performance >= 0.97 * sweep.perf_max, (name, budget)

    def test_cheaper_than_sweep(self, ivb, sra):
        gs = golden_section_optimal(ivb.cpu, ivb.dram, sra, 208.0, tol_w=2.0)
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 208.0, step_w=2.0)
        assert gs.evaluations < len(sweep.points) / 3

    def test_budget_respected(self, ivb, stream):
        gs = golden_section_optimal(ivb.cpu, ivb.dram, stream, 190.0)
        assert gs.allocation.total_w <= 190.0 + 1e-9

    def test_prefers_bound_respecting_points(self, ivb, dgemm):
        # At a budget where scenario-V cheating would win on raw perf, the
        # returned optimum must still respect the bound.
        from repro.perfmodel.executor import execute_on_host

        gs = golden_section_optimal(ivb.cpu, ivb.dram, dgemm, 200.0)
        r = execute_on_host(
            ivb.cpu, ivb.dram, dgemm.phases,
            gs.allocation.proc_w, gs.allocation.mem_w,
        )
        assert r.respects_bound

    def test_tiny_range_rejected(self, ivb, sra):
        with pytest.raises(SweepError):
            golden_section_optimal(
                ivb.cpu, ivb.dram, sra, 20.0, mem_min_w=16.0, proc_min_w=8.0
            )

    def test_bad_tolerance_rejected(self, ivb, sra):
        with pytest.raises(SweepError):
            golden_section_optimal(ivb.cpu, ivb.dram, sra, 200.0, tol_w=0.0)

    def test_search_cost_reported(self, ivb, mg_wl=None):
        wl = cpu_workload("mg")
        gs = golden_section_optimal(ivb.cpu, ivb.dram, wl, 208.0)
        assert gs.search_cost_runs == gs.evaluations >= 4
