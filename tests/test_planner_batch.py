"""Stage-level differential battery: batched planner stages vs scalar.

The planner resolves every stage's point subset — the probe grid, the
certify/escalation set, each lockstep bracket-walk frontier, the plateau
middle — through one :class:`~repro.core.parallel.SubgridExecutor` per
plan.  With the vectorized kernel enabled each subset is one gathered
kernel pass; with ``batch=False`` the very same subsets resolve through
the scalar per-point executor.  These tests trace the stage-by-stage
fetch sequence on both paths and assert they cannot drift: identical
batches in identical order, identical executed-point sets, bit-for-bit
identical results and cache accounting — across both full workload
registries and hypothesis-fuzzed synthetic domains.
"""

from __future__ import annotations

from contextlib import contextmanager

from hypothesis import given, settings

import numpy as np

from repro.core.allocation import allocation_grid
from repro.core.parallel import PlannerStats, SubgridExecutor, SweepEngine
from repro.core.planner import (
    _default_stride,
    _probe_indices,
    adaptive_cpu_budget_curve,
    adaptive_gpu_budget_curve,
    plan_cpu_sweep,
    plan_gpu_sweep,
)
from repro.core.sweep import gpu_freq_axis
from repro.experiments.fig9 import CPU_BUDGETS_W, GPU_CAPS_W
from repro.hardware.platforms import (
    haswell_node,
    ivybridge_node,
    titan_v_card,
    titan_xp_card,
)
from repro.workloads import (
    cpu_workload,
    gpu_workload,
    list_cpu_workloads,
    list_gpu_workloads,
)

from tests.conftest import planner_cpu_cases
from tests.test_planner_equivalence import (
    assert_points_identical,
    oracle_engine,
)

import pytest


@contextmanager
def subgrid_trace():
    """Record every ``SubgridExecutor.run`` call: one entry per stage batch.

    Each entry is ``(indices, results)`` with the indices exactly as the
    planner requested them and the results exactly as the engine returned
    them, so two traces compare bit-for-bit via ``==``.
    """
    log: list[tuple[tuple[int, ...], tuple]] = []
    original = SubgridExecutor.run

    def wrapped(self, indices):
        out = original(self, indices)
        log.append((tuple(int(i) for i in indices), tuple(out)))
        return out

    SubgridExecutor.run = wrapped
    try:
        yield log
    finally:
        SubgridExecutor.run = original


def traced_cpu_plan(node, wl, budget, *, step_w=4.0, batch=True, engine=None):
    engine = engine or SweepEngine(n_jobs=1, batch=batch)
    with subgrid_trace() as log:
        planned = plan_cpu_sweep(
            node.cpu, node.dram, wl, budget, step_w=step_w, engine=engine
        )
    return planned, log, engine


def traced_gpu_plan(card, wl, cap, *, batch=True, engine=None):
    engine = engine or SweepEngine(n_jobs=1, batch=batch)
    with subgrid_trace() as log:
        planned = plan_gpu_sweep(card, wl, cap, freq_stride=1, engine=engine)
    return planned, log, engine


def assert_traces_identical(batched, scalar) -> None:
    """Same stage batches, same order, same points, same result bits."""
    assert len(batched) == len(scalar)
    for stage, ((b_idx, b_res), (s_idx, s_res)) in enumerate(
        zip(batched, scalar)
    ):
        assert b_idx == s_idx, f"stage {stage} fetched different indices"
        assert b_res == s_res, f"stage {stage} returned different results"


def executed_set(log) -> set[int]:
    return {i for indices, _ in log for i in indices}


# ---------------------------------------------------------------------------
# probe: the first stage batch is the exact probe grid, on both paths
# ---------------------------------------------------------------------------

class TestProbeStage:
    def test_cold_cpu_probe_is_one_exact_batch(self, ivb, dgemm):
        n = len(allocation_grid(208.0, mem_min_w=16.0, proc_min_w=8.0))
        planned, log, _ = traced_cpu_plan(ivb, dgemm, 208.0)
        assert not planned.stats.fallback
        probes = _probe_indices(n, _default_stride(n), None, False)
        assert log[0][0] == tuple(probes)
        assert planned.stats.probe_points == len(probes)

    def test_cold_gpu_probe_is_one_exact_batch(self, xp, sgemm):
        n = len(gpu_freq_axis(xp, 1))
        planned, log, _ = traced_gpu_plan(xp, sgemm, 190.0)
        probes = _probe_indices(n, _default_stride(n), None, False)
        assert log[0][0] == tuple(probes)

    @pytest.mark.parametrize("budget", (176.0, 208.0))
    def test_probe_batch_identical_across_paths(self, ivb, dgemm, budget):
        _, batched, _ = traced_cpu_plan(ivb, dgemm, budget, batch=True)
        _, scalar, _ = traced_cpu_plan(ivb, dgemm, budget, batch=False)
        assert batched[0][0] == scalar[0][0]
        assert batched[0][1] == scalar[0][1]


# ---------------------------------------------------------------------------
# certify: a violated certificate falls back identically on both paths
# ---------------------------------------------------------------------------

class TestCertifyStage:
    def test_fallback_case_fetches_nothing_past_the_probe(self, ivb, sra):
        # Cold SRA at 120 W / 6 W steps violates the probe certificates:
        # the sub-grid trace must stop at the probe batch and the full
        # sweep (outside the sub-grid door) must take over transparently.
        planned, log, _ = traced_cpu_plan(ivb, sra, 120.0, step_w=6.0)
        assert planned.stats.fallback
        assert len(log) == 1
        assert planned.stats.executed_points == planned.stats.native_points

    def test_fallback_is_identical_across_paths(self, ivb, sra):
        b_planned, b_log, b_eng = traced_cpu_plan(
            ivb, sra, 120.0, step_w=6.0, batch=True
        )
        s_planned, s_log, s_eng = traced_cpu_plan(
            ivb, sra, 120.0, step_w=6.0, batch=False
        )
        assert b_planned.stats == s_planned.stats
        assert_traces_identical(b_log, s_log)
        assert_points_identical(b_planned.best, s_planned.best)
        assert b_eng.cache.stats.misses == s_eng.cache.stats.misses
        assert b_eng.cache.stats.hits == s_eng.cache.stats.hits

    def test_certify_pass_adds_no_extra_batch(self, has, dgemm):
        # Certification consumes probe results without fetching: on a
        # clean plan every post-probe batch belongs to the walk/select
        # stages and is strictly smaller than the probe batch.
        planned, log, _ = traced_cpu_plan(has, dgemm, 208.0)
        assert not planned.stats.fallback
        probe_size = len(log[0][0])
        assert all(len(idx) < probe_size for idx, _ in log[1:])


# ---------------------------------------------------------------------------
# bracket/walk: lockstep frontier rounds, batched, identical across paths
# ---------------------------------------------------------------------------

class TestWalkStage:
    def test_frontier_rounds_are_small_batches(self, ivb, dgemm):
        engine = SweepEngine(n_jobs=1)
        traced_cpu_plan(ivb, dgemm, 176.0, engine=engine)
        planned, log, _ = traced_cpu_plan(ivb, dgemm, 208.0, engine=engine)
        assert not planned.stats.fallback
        # Each lockstep round fetches at most two frontier neighbors and
        # two momentum points; the plateau middle adds a singleton.
        assert all(len(idx) <= 4 for idx, _ in log[1:])

    def test_walk_rounds_identical_across_paths(self, ivb, dgemm):
        b_eng = SweepEngine(n_jobs=1, batch=True)
        s_eng = SweepEngine(n_jobs=1, batch=False)
        for budget in (176.0, 208.0, 240.0):
            b_planned, b_log, _ = traced_cpu_plan(
                ivb, dgemm, budget, engine=b_eng
            )
            s_planned, s_log, _ = traced_cpu_plan(
                ivb, dgemm, budget, engine=s_eng
            )
            assert_traces_identical(b_log, s_log)
            assert executed_set(b_log) == executed_set(s_log)
            assert_points_identical(b_planned.best, s_planned.best)
            assert b_planned.plateau == s_planned.plateau

    def test_walk_fetches_are_disjoint_from_probes(self, ivb, dgemm):
        planned, log, _ = traced_cpu_plan(ivb, dgemm, 208.0)
        assert not planned.stats.fallback
        probe_set = set(log[0][0])
        walked = {i for idx, _ in log[1:] for i in idx}
        assert not (walked & probe_set)


# ---------------------------------------------------------------------------
# select: the plateau middle comes from the same sub-grid door
# ---------------------------------------------------------------------------

class TestSelectStage:
    def test_best_index_is_executed_through_the_subgrid(self, ivb, dgemm):
        planned, log, _ = traced_cpu_plan(ivb, dgemm, 208.0)
        assert not planned.stats.fallback
        assert planned.best_index in executed_set(log)
        lo, hi = planned.plateau
        assert planned.best_index == (lo + hi) // 2

    def test_selected_point_identical_across_paths(self, tv, minife):
        b_planned, b_log, _ = traced_gpu_plan(tv, minife, 190.0, batch=True)
        s_planned, s_log, _ = traced_gpu_plan(tv, minife, 190.0, batch=False)
        assert_traces_identical(b_log, s_log)
        assert b_planned.best_index == s_planned.best_index
        assert_points_identical(b_planned.best, s_planned.best)


# ---------------------------------------------------------------------------
# full registries: every stage batch identical, both devices
# ---------------------------------------------------------------------------

class TestRegistryStageDifferential:
    @pytest.mark.parametrize("name", list_cpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["ivb", "has"])
    def test_cpu_registry(self, request, platform_fixture, name):
        node = request.getfixturevalue(platform_fixture)
        wl = cpu_workload(name)
        b_eng = SweepEngine(n_jobs=1, batch=True)
        s_eng = SweepEngine(n_jobs=1, batch=False)
        for budget in (176.0, 240.0):
            b_planned, b_log, _ = traced_cpu_plan(
                node, wl, budget, engine=b_eng
            )
            s_planned, s_log, _ = traced_cpu_plan(
                node, wl, budget, engine=s_eng
            )
            assert_traces_identical(b_log, s_log)
            assert b_planned.stats == s_planned.stats
            assert_points_identical(b_planned.best, s_planned.best)
        assert b_eng.cache.stats.misses == s_eng.cache.stats.misses
        assert b_eng.cache.stats.hits == s_eng.cache.stats.hits

    @pytest.mark.parametrize("name", list_gpu_workloads())
    @pytest.mark.parametrize("platform_fixture", ["xp", "tv"])
    def test_gpu_registry(self, request, platform_fixture, name):
        card = request.getfixturevalue(platform_fixture)
        wl = gpu_workload(name)
        b_eng = SweepEngine(n_jobs=1, batch=True)
        s_eng = SweepEngine(n_jobs=1, batch=False)
        for cap in (150.0, 250.0):
            b_planned, b_log, _ = traced_gpu_plan(card, wl, cap, engine=b_eng)
            s_planned, s_log, _ = traced_gpu_plan(card, wl, cap, engine=s_eng)
            assert_traces_identical(b_log, s_log)
            assert b_planned.stats == s_planned.stats
            assert_points_identical(b_planned.best, s_planned.best)
        assert b_eng.cache.stats.misses == s_eng.cache.stats.misses
        assert b_eng.cache.stats.hits == s_eng.cache.stats.hits


# ---------------------------------------------------------------------------
# golden executed-point pins: figure-scale runs, exact counts
# ---------------------------------------------------------------------------

def _fig2_scale(engine):
    for node in (ivybridge_node(), haswell_node()):
        for wname in ("dgemm", "sra"):
            adaptive_cpu_budget_curve(
                node.cpu, node.dram, cpu_workload(wname),
                np.arange(120.0, 301.0, 10.0), step_w=6.0, engine=engine,
            )


def _fig6_scale(engine):
    for card in (titan_xp_card(), titan_v_card()):
        caps = np.arange(130.0, 301.0, 10.0)
        caps = caps[(caps >= card.min_cap_w) & (caps <= card.max_cap_w)]
        for wname in ("sgemm", "minife"):
            adaptive_gpu_budget_curve(
                card, gpu_workload(wname), caps, engine=engine
            )


def _fig9_scale(engine):
    node = ivybridge_node()
    for wname in list_cpu_workloads():
        for budget in CPU_BUDGETS_W:
            plan_cpu_sweep(
                node.cpu, node.dram, cpu_workload(wname), float(budget),
                step_w=4.0, engine=engine,
            )
    for card in (titan_xp_card(), titan_v_card()):
        caps = [c for c in GPU_CAPS_W if card.min_cap_w <= c <= card.max_cap_w]
        for wname in list_gpu_workloads():
            for cap in caps:
                plan_gpu_sweep(card, gpu_workload(wname), float(cap), engine=engine)


#: Golden accounting per figure-scale run.  These are exact pins, not
#: bounds: any silent regrowth of the executed set — a batching change
#: that fetches even one speculative point more — moves a counter and
#: fails the test.  Re-derive deliberately when the planner's search
#: policy changes on purpose.
_GOLDEN = {
    "fig2": (_fig2_scale, PlannerStats(
        sweeps=76, fallbacks=1, warm_starts=72,
        native_points=2408, executed_points=707, reused_points=321,
    ), 4, 707),
    "fig6": (_fig6_scale, PlannerStats(
        sweeps=72, fallbacks=2, warm_starts=68,
        native_points=1584, executed_points=431, reused_points=290,
    ), 14, 431),
    "fig9": (_fig9_scale, PlannerStats(
        sweeps=92, fallbacks=1, warm_starts=69,
        native_points=2948, executed_points=959, reused_points=152,
    ), 5, 959),
}


class TestGoldenPointCounts:
    @pytest.mark.parametrize("fig", sorted(_GOLDEN))
    def test_executed_point_pins(self, fig):
        run, pinned, cache_hits, cache_misses = _GOLDEN[fig]
        engine = SweepEngine(n_jobs=1, batch=True)
        run(engine)
        assert engine.planner.stats == pinned
        assert engine.cache.stats.hits == cache_hits
        assert engine.cache.stats.misses == cache_misses

    @pytest.mark.parametrize("fig", sorted(_GOLDEN))
    def test_cache_counters_match_scalar_planner(self, fig):
        run, _, _, _ = _GOLDEN[fig]
        batched = SweepEngine(n_jobs=1, batch=True)
        run(batched)
        scalar = SweepEngine(n_jobs=1, batch=False)
        run(scalar)
        assert batched.planner.stats == scalar.planner.stats
        assert batched.cache.stats.hits == scalar.cache.stats.hits
        assert batched.cache.stats.misses == scalar.cache.stats.misses

    def test_savings_hold_the_papers_multiplier(self):
        # The planner's reason to exist: every figure-scale run executes
        # at least 3x fewer model points than the native grids.
        for fig, (run, pinned, _, _) in _GOLDEN.items():
            assert pinned.savings_ratio > 3.0, fig


# ---------------------------------------------------------------------------
# fuzzed synthetic domains (shared conftest strategies)
# ---------------------------------------------------------------------------

class TestFuzzedStageDifferential:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(case=planner_cpu_cases())
    def test_fuzzed_stage_traces_match(self, case):
        cpu, dram, wl = case["cpu"], case["dram"], case["workload"]
        kwargs = {
            k: case[k]
            for k in ("budget_w", "step_w", "mem_min_w", "proc_min_w")
        }
        with subgrid_trace() as b_log:
            b_planned = plan_cpu_sweep(
                cpu, dram, wl,
                engine=SweepEngine(n_jobs=1, batch=True), **kwargs,
            )
        with subgrid_trace() as s_log:
            s_planned = plan_cpu_sweep(
                cpu, dram, wl,
                engine=SweepEngine(n_jobs=1, batch=False), **kwargs,
            )
        assert_traces_identical(b_log, s_log)
        assert b_planned.stats == s_planned.stats
        assert b_planned.plateau == s_planned.plateau
        assert_points_identical(b_planned.best, s_planned.best)
