"""CPU package domain: demand model and cap enforcement mechanisms."""

import pytest

from repro.errors import ConfigurationError, UnitError
from repro.hardware.component import CappingMechanism
from repro.hardware.cpu import CpuDomain, CpuOperatingPoint
from repro.hardware.pstate import PStateTable


@pytest.fixture
def cpu():
    return CpuDomain(
        n_cores=20,
        pstates=PStateTable(f_min_ghz=1.2, f_nom_ghz=2.5, step_ghz=0.1, v_min_ratio=0.75),
        idle_power_w=48.0,
        max_dynamic_w=125.0,
        duty_min=0.0625,
        duty_steps=16,
        flops_per_core_cycle=8.0,
    )


class TestConstruction:
    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            CpuDomain(
                n_cores=0,
                pstates=PStateTable(f_min_ghz=1.0, f_nom_ghz=2.0),
                idle_power_w=10.0,
                max_dynamic_w=50.0,
            )

    def test_rejects_zero_duty_min(self):
        with pytest.raises(ConfigurationError):
            CpuDomain(
                n_cores=4,
                pstates=PStateTable(f_min_ghz=1.0, f_nom_ghz=2.0),
                idle_power_w=10.0,
                max_dynamic_w=50.0,
                duty_min=0.0,
            )

    def test_rejects_negative_dynamic(self):
        with pytest.raises(UnitError):
            CpuDomain(
                n_cores=4,
                pstates=PStateTable(f_min_ghz=1.0, f_nom_ghz=2.0),
                idle_power_w=10.0,
                max_dynamic_w=-5.0,
            )

    def test_demand_bounds(self, cpu):
        assert cpu.floor_power_w == 48.0
        assert cpu.max_power_w == pytest.approx(173.0)


class TestPowerModel:
    def test_idle_at_zero_activity(self, cpu):
        op = CpuOperatingPoint(2.5, 1.0, CappingMechanism.NONE)
        assert cpu.demand_w(0.0, op) == pytest.approx(48.0)

    def test_full_power_at_nominal(self, cpu):
        op = CpuOperatingPoint(2.5, 1.0, CappingMechanism.NONE)
        assert cpu.demand_w(1.0, op) == pytest.approx(173.0)

    def test_power_scales_with_duty(self, cpu):
        full = cpu.demand_w(1.0, CpuOperatingPoint(1.2, 1.0, CappingMechanism.NONE))
        half = cpu.demand_w(1.0, CpuOperatingPoint(1.2, 0.5, CappingMechanism.NONE))
        assert (half - 48.0) == pytest.approx((full - 48.0) * 0.5)

    def test_power_monotone_in_frequency(self, cpu):
        powers = [
            cpu.demand_w(0.7, CpuOperatingPoint(float(f), 1.0, CappingMechanism.NONE))
            for f in cpu.pstates.frequencies_ghz
        ]
        assert powers == sorted(powers)

    def test_pstate_power_helper_agrees(self, cpu):
        op = CpuOperatingPoint(1.8, 1.0, CappingMechanism.NONE)
        assert cpu.pstate_power_w(1.8, 0.6) == pytest.approx(cpu.demand_w(0.6, op))

    def test_min_throttled_power_close_to_idle(self, cpu):
        p = cpu.min_throttled_power_w(0.5)
        assert 48.0 < p < 52.0


class TestEnforcement:
    def test_generous_cap_no_mechanism(self, cpu):
        op = cpu.operating_point(500.0, 0.8)
        assert op.mechanism is CappingMechanism.NONE
        assert op.freq_ghz == pytest.approx(2.5)
        assert op.duty == 1.0

    def test_cap_in_pstate_range_uses_dvfs(self, cpu):
        demand_nom = cpu.pstate_power_w(2.5, 0.8)
        demand_min = cpu.pstate_power_w(1.2, 0.8)
        cap = (demand_nom + demand_min) / 2
        op = cpu.operating_point(cap, 0.8)
        assert op.mechanism is CappingMechanism.DVFS
        assert 1.2 <= op.freq_ghz < 2.5
        assert cpu.demand_w(0.8, op) <= cap + 1e-6

    def test_cap_below_pstates_uses_tstates(self, cpu):
        cap = cpu.pstate_power_w(1.2, 0.8) - 3.0
        op = cpu.operating_point(cap, 0.8)
        assert op.mechanism is CappingMechanism.THROTTLE
        assert op.freq_ghz == pytest.approx(1.2)
        assert op.duty < 1.0
        assert cpu.demand_w(0.8, op) <= cap + 1e-6

    def test_cap_below_floor_hits_floor(self, cpu):
        op = cpu.operating_point(10.0, 0.8)
        assert op.mechanism is CappingMechanism.FLOOR
        assert op.duty == pytest.approx(0.0625)
        # The floor mechanism does NOT respect the cap.
        assert cpu.demand_w(0.8, op) > 10.0
        assert not op.mechanism.respects_cap

    def test_dvfs_picks_highest_feasible(self, cpu):
        cap = cpu.pstate_power_w(2.0, 0.8) + 0.01
        op = cpu.operating_point(cap, 0.8)
        assert op.freq_ghz == pytest.approx(2.0)

    def test_zero_activity_is_unconstrained(self, cpu):
        op = cpu.operating_point(48.0, 0.0)
        assert op.mechanism is CappingMechanism.NONE

    def test_zero_activity_below_idle_is_floor(self, cpu):
        op = cpu.operating_point(20.0, 0.0)
        assert op.mechanism is CappingMechanism.FLOOR

    def test_higher_activity_forces_lower_frequency(self, cpu):
        cap = 100.0
        f_light = cpu.operating_point(cap, 0.3).freq_ghz
        f_heavy = cpu.operating_point(cap, 1.0).freq_ghz
        assert f_heavy < f_light

    def test_duty_snaps_down_to_grid(self, cpu):
        cap = cpu.min_throttled_power_w(0.8) + 2.0
        op = cpu.operating_point(cap, 0.8)
        span = 1.0 - cpu.duty_min
        step = span / (cpu.duty_steps - 1)
        k = (op.duty - cpu.duty_min) / step
        assert abs(k - round(k)) < 1e-9


class TestRates:
    def test_compute_rate_at_nominal(self, cpu):
        op = CpuOperatingPoint(2.5, 1.0, CappingMechanism.NONE)
        assert cpu.compute_rate_flops(op, 1.0) == pytest.approx(20 * 2.5e9 * 8)

    def test_compute_rate_scales_with_duty(self, cpu):
        op_full = CpuOperatingPoint(1.2, 1.0, CappingMechanism.NONE)
        op_half = CpuOperatingPoint(1.2, 0.5, CappingMechanism.NONE)
        assert cpu.compute_rate_flops(op_half, 0.5) == pytest.approx(
            cpu.compute_rate_flops(op_full, 0.5) * 0.5
        )

    def test_effective_frequency(self):
        op = CpuOperatingPoint(2.0, 0.25, CappingMechanism.THROTTLE)
        assert op.effective_freq_ghz == pytest.approx(0.5)
