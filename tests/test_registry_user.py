"""User workload registration."""

import pytest

from repro.errors import ConfigurationError, UnknownWorkloadError
from repro.workloads import (
    get_workload,
    list_workloads,
    register_workload,
    synthetic_workload,
    unregister_workload,
)


@pytest.fixture
def custom():
    wl = synthetic_workload(name="my-app", intensity=2.0)
    register_workload(wl)
    yield wl
    try:
        unregister_workload("my-app")
    except UnknownWorkloadError:
        pass


class TestRegistration:
    def test_registered_workload_resolvable(self, custom):
        assert get_workload("my-app") == custom
        assert "my-app" in list_workloads()
        assert "my-app" in list_workloads("cpu")
        assert "my-app" not in list_workloads("gpu")

    def test_reserved_names_rejected(self):
        wl = synthetic_workload(name="dgemm")
        with pytest.raises(ConfigurationError, match="reserved"):
            register_workload(wl)

    def test_double_registration_needs_replace(self, custom):
        with pytest.raises(ConfigurationError, match="replace=True"):
            register_workload(synthetic_workload(name="my-app"))
        replacement = synthetic_workload(name="my-app", intensity=9.0)
        register_workload(replacement, replace=True)
        assert get_workload("my-app") == replacement

    def test_unregister(self, custom):
        unregister_workload("my-app")
        with pytest.raises(UnknownWorkloadError):
            get_workload("my-app")

    def test_cannot_unregister_builtin(self):
        with pytest.raises(ConfigurationError):
            unregister_workload("stream")

    def test_unregister_unknown(self):
        with pytest.raises(UnknownWorkloadError):
            unregister_workload("never-registered")

    def test_case_insensitive(self, custom):
        assert get_workload("MY-APP") == custom

    def test_usable_end_to_end(self, custom, ivb):
        from repro.core.coord import coord_cpu
        from repro.core.profiler import profile_cpu_workload
        from repro.perfmodel.executor import execute_on_host

        critical = profile_cpu_workload(ivb.cpu, ivb.dram, get_workload("my-app"))
        decision = coord_cpu(critical, 180.0)
        r = execute_on_host(
            ivb.cpu, ivb.dram, custom.phases,
            decision.allocation.proc_w, decision.allocation.mem_w,
        )
        assert custom.performance(r) > 0
