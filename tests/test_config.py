"""Serialization round trips."""

import pytest

from repro.config import from_dict, from_json, to_dict, to_json
from repro.core.allocation import PowerAllocation
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.errors import ConfigurationError
from repro.workloads import cpu_workload, gpu_workload


class TestRoundTrips:
    def test_phase(self):
        phase = cpu_workload("stream").phases[0]
        assert from_dict(to_dict(phase)) == phase

    def test_workload_cpu(self):
        wl = cpu_workload("mg")  # multi-phase, MOPS metric
        assert from_dict(to_dict(wl)) == wl

    def test_workload_gpu(self):
        wl = gpu_workload("sgemm")
        assert from_json(to_json(wl)) == wl

    def test_every_registered_workload(self):
        from repro.workloads import get_workload, list_workloads

        for name in list_workloads():
            wl = get_workload(name)
            assert from_json(to_json(wl)) == wl, name

    def test_cpu_critical_powers(self, ivb, sra):
        from repro.core.profiler import profile_cpu_workload

        critical = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        assert from_json(to_json(critical)) == critical

    def test_gpu_critical_powers(self):
        g = GpuCriticalPowers(
            tot_max=290.0, tot_ref=180.0, tot_min=150.0, mem_min=45.0, mem_max=70.0
        )
        assert from_dict(to_dict(g)) == g

    def test_power_allocation(self):
        a = PowerAllocation(108.0, 116.0)
        assert from_json(to_json(a)) == a


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(ConfigurationError, match="cannot serialize"):
            to_dict(object())

    def test_untagged_payload(self):
        with pytest.raises(ConfigurationError, match="self-describing"):
            from_dict({"proc_w": 1.0})

    def test_unknown_tag(self):
        with pytest.raises(ConfigurationError, match="unknown payload"):
            from_dict({"type": "martian"})

    def test_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            from_json("{nope")

    def test_validation_still_applies(self):
        # Deserialization goes through the same constructors, so corrupt
        # payloads are rejected, not silently accepted.
        blob = to_dict(CpuCriticalPowers(
            cpu_l1=112.0, cpu_l2=66.0, cpu_l3=50.0, cpu_l4=48.0,
            mem_l1=116.0, mem_l2=30.0, mem_l3=66.0,
        ))
        blob["cpu_l2"] = 400.0  # violates the ordering invariant
        with pytest.raises(ConfigurationError):
            from_dict(blob)
