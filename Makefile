# Developer entry points. The package is laid out src/-style, so every
# target exports PYTHONPATH=src rather than requiring an install.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-slow test-all bench lint typecheck check

# Tier-1: the invariant linter, then the trimmed suite (pyproject
# addopts deselect `slow`).
test: lint
	$(PYTEST) -x -q

# The exhaustive matrix: every registered workload through the
# serial-vs-parallel equivalence harness (and any other slow tests).
test-slow:
	$(PYTEST) -x -q -m slow

test-all: test test-slow

# Static invariant checks (RPL001-RPL005) over the whole tree.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/repro

# mypy --strict over repro.core and repro.lint (configured in
# pyproject.toml).  Gated: the target skips with a notice when mypy is
# not installed so offline environments keep a working `make test`.
typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		PYTHONPATH=src $(PYTHON) -m mypy; \
	else \
		echo "mypy is not installed; skipping typecheck (pip install mypy)"; \
	fi

# Everything the CI gate runs.
check: lint typecheck test

# Artifact benchmarks (pytest-benchmark) + the parallel engine report.
bench:
	$(PYTEST) -q benchmarks/ --benchmark-only
	$(PYTEST) -q -s benchmarks/bench_parallel.py
