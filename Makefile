# Developer entry points. The package is laid out src/-style, so every
# target exports PYTHONPATH=src rather than requiring an install.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-slow test-all bench

# Tier-1: the trimmed suite (pyproject addopts deselect `slow`).
test:
	$(PYTEST) -x -q

# The exhaustive matrix: every registered workload through the
# serial-vs-parallel equivalence harness (and any other slow tests).
test-slow:
	$(PYTEST) -x -q -m slow

test-all: test test-slow

# Artifact benchmarks (pytest-benchmark) + the parallel engine report.
bench:
	$(PYTEST) -q benchmarks/ --benchmark-only
	$(PYTEST) -q -s benchmarks/bench_parallel.py
