# Developer entry points. The package is laid out src/-style, so every
# target exports PYTHONPATH=src rather than requiring an install.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-slow test-all bench bench-smoke cache-smoke chaos-smoke serve-smoke fleet-smoke coverage lint typecheck check

# Tier-1: the invariant linter, then the trimmed suite (pyproject
# addopts deselect `slow`).
test: lint
	$(PYTEST) -x -q

# The exhaustive matrix: every registered workload through the
# serial-vs-parallel equivalence harness (and any other slow tests).
test-slow:
	$(PYTEST) -x -q -m slow

test-all: test test-slow

# Static invariant checks (RPL001-RPL005) over the whole tree.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/repro

# mypy --strict over repro.core, repro.lint, the vectorized batch
# kernel, the scheduling package, and the coordination server
# (configured in pyproject.toml).
# Gated: the target skips with a notice when mypy is not installed so
# offline environments keep a working `make test`.
typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		PYTHONPATH=src $(PYTHON) -m mypy; \
	else \
		echo "mypy is not installed; skipping typecheck (pip install mypy)"; \
	fi

# Everything the CI gate runs.
check: lint typecheck test

# Artifact benchmarks (pytest-benchmark) + the engine wall-clock reports
# (scalar-vs-batch kernel, serial-vs-pool fan-out, adaptive planner
# point accounting + disk cold/warm).
bench:
	$(PYTEST) -q benchmarks/ --benchmark-only
	$(PYTEST) -q -s benchmarks/bench_batch.py
	$(PYTEST) -q -s benchmarks/bench_parallel.py
	$(PYTEST) -q -s benchmarks/bench_planner.py

# CI smoke: the batch-vs-scalar comparison on the full fig9 grid and
# the planner point-reduction floors, each under both REPRO_SWEEP
# settings so the env-resolved default mode stays green either way.
# bench_planner pins engine modes internally (full pass vs planner
# pass), so the env sweep here exercises resolution plumbing, not the
# assertions — those are identical in both runs by design.
bench-smoke:
	REPRO_SWEEP=full     $(PYTEST) -q -s benchmarks/bench_batch.py --bench-quick
	REPRO_SWEEP=adaptive $(PYTEST) -q -s benchmarks/bench_batch.py --bench-quick
	REPRO_SWEEP=full     $(PYTEST) -q -s benchmarks/bench_planner.py --bench-quick
	REPRO_SWEEP=adaptive $(PYTEST) -q -s benchmarks/bench_planner.py --bench-quick

# CI smoke: persistent cross-process cache reuse.  Two fresh
# interpreters share one REPRO_CACHE_DIR; the second must be served
# entirely from disk (zero model re-executions).
cache-smoke:
	$(PYTEST) -q -s benchmarks/bench_cache_reuse.py

# CI smoke: the degradation contract under the canned fault plan,
# through the CLI battery, under both REPRO_SWEEP settings (the armed
# engine path must hold whichever sweep strategy the env resolves).
# Exit is nonzero iff the contract is violated.
chaos-smoke:
	REPRO_SWEEP=full     PYTHONPATH=src $(PYTHON) -m repro chaos \
		--plan examples/faults/chaos_smoke.json --scale smoke
	REPRO_SWEEP=adaptive PYTHONPATH=src $(PYTHON) -m repro chaos \
		--plan examples/faults/chaos_smoke.json --scale smoke

# CI smoke: the coordination server end-to-end — bind an ephemeral
# port, drive a concurrent TCP burst through the micro-batcher, verify
# every reply and spot-check bit-identity against the direct library
# call — under both REPRO_SWEEP settings (the served answers must not
# depend on which sweep strategy the env resolves).
serve-smoke:
	REPRO_SWEEP=full     PYTHONPATH=src $(PYTHON) -m repro serve --smoke
	REPRO_SWEEP=adaptive PYTHONPATH=src $(PYTHON) -m repro serve --smoke

# CI smoke: the fleet simulator end-to-end through the CLI — a small
# synthetic trace over a heterogeneous fleet with periodic budget
# re-splits — under both REPRO_SWEEP settings (allocation rounds resolve
# through the engine, so both strategies must drive the fleet green).
fleet-smoke:
	REPRO_SWEEP=full     PYTHONPATH=src $(PYTHON) -m repro fleet \
		--nodes 32 --gen-jobs 300 --rate 4 --interval 10
	REPRO_SWEEP=adaptive PYTHONPATH=src $(PYTHON) -m repro fleet \
		--nodes 32 --gen-jobs 300 --rate 4 --interval 10

# Coverage floor over the engine and fault layers.  Gated: skips with a
# notice when pytest-cov is not installed (CI installs and enforces it).
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTEST) -x -q --cov=repro.core --cov=repro.faults \
			--cov-report=term-missing:skip-covered --cov-fail-under=75; \
	else \
		echo "pytest-cov is not installed; skipping coverage (pip install pytest-cov)"; \
	fi
