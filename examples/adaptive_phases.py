#!/usr/bin/env python3
"""Adaptive power coordination driven by detected phase changes.

Closes the loop the paper's Section 6.2 points at: multi-phase codes want
different allocations per phase.  This example

1. runs a multi-phase NPB code under a static COORD allocation,
2. detects its phase boundaries *from the power meter alone* (CUSUM change
   points — no application instrumentation),
3. re-coordinates per phase and compares throughput.

Run: ``python examples/adaptive_phases.py [workload] [budget]``
(multi-phase workloads: bt, sp, lu, ft, mg)
"""

import sys

from repro.core.adaptive import adaptive_vs_static
from repro.core.coord import coord_cpu
from repro.core.profiler import profile_cpu_workload
from repro.hardware.platforms import ivybridge_node
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.phasedetect import detect_phase_changes
from repro.perfmodel.power_trace import sample_power_trace
from repro.util.tables import format_table
from repro.workloads import cpu_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bt"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 200.0
    node = ivybridge_node()
    workload = cpu_workload(name)
    if len(workload.phases) < 2:
        print(f"{name} is single-phase; try bt, sp, lu, ft or mg")
        return

    print(f"Workload: {workload} ({len(workload.phases)} phases), "
          f"budget {budget:.0f} W\n")

    # Static run + meter-only phase detection.
    critical = profile_cpu_workload(node.cpu, node.dram, workload)
    decision = coord_cpu(critical, budget)
    result = execute_on_host(
        node.cpu, node.dram, workload.phases,
        decision.allocation.proc_w, decision.allocation.mem_w,
    )
    trace = sample_power_trace(result, dt_s=0.02)
    changes = detect_phase_changes(trace, slack_w=1.0, threshold_ws=6.0)

    boundaries = []
    acc = 0.0
    for phase in result.phases[:-1]:
        acc += phase.time_s
        boundaries.append(acc)
    print(format_table(
        ["detected at (s)", "direction", "old level (W)", "new level (W)"],
        [(c.time_s, c.direction, c.baseline_w, c.new_level_w) for c in changes],
        float_spec=".1f",
        title=f"meter-detected phase changes (true boundaries: "
              f"{', '.join(f'{b:.1f}s' for b in boundaries)})",
    ))

    # Per-phase adaptation.
    cmp = adaptive_vs_static(node.cpu, node.dram, workload, budget)
    print(f"\nstatic COORD:    {cmp.static_perf:10.4g} {workload.metric_unit}")
    print(f"per-phase COORD: {cmp.adaptive_perf:10.4g} {workload.metric_unit}")
    print(f"adaptation gain: {(cmp.speedup - 1) * 100:+.1f}%")
    print("\nper-phase allocations:")
    for phase, alloc in zip(workload.phases, cmp.schedule.allocations):
        print(f"  {phase.name:>14s}: P_cpu={alloc.proc_w:6.1f} W, "
              f"P_mem={alloc.mem_w:6.1f} W")


if __name__ == "__main__":
    main()
