#!/usr/bin/env python3
"""big.LITTLE power coordination: when is it worth waking the big cores?

On a heterogeneous node the allocation question gains a dimension: the
little cluster delivers more operations per watt, the big cluster more
operations outright — so under a tight power bound the optimum *gates the
big cores entirely*, and there is a workload-specific crossover budget
where waking them starts to pay.

Run: ``python examples/biglittle_crossover.py [workload]``
"""

import sys

from repro.core.coord_hetero import (
    coord_biglittle,
    profile_biglittle,
    sweep_biglittle,
)
from repro.hardware.biglittle import biglittle_node
from repro.perfmodel.hetero import execute_on_biglittle
from repro.util.tables import format_table
from repro.workloads import cpu_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mg"
    node = biglittle_node()
    workload = cpu_workload(name)

    print(f"Node: {node} "
          f"(productive from {node.min_productive_power_w:.2f} W, "
          f"max {node.max_power_w:.2f} W)")
    print(f"Workload: {workload}\n")

    critical = profile_biglittle(node, workload)
    print(f"profiled demands: big {critical.big_l1:.2f} W, "
          f"little {critical.little_l1:.2f} W, memory {critical.mem_l1:.2f} W\n")

    rows = []
    for budget in (0.8, 1.2, 1.8, 2.6, 3.5, 5.0, 7.0, 9.5):
        points = sweep_biglittle(node, workload, budget, step_w=0.25)
        best = max(points, key=lambda p: p.performance)
        alloc = coord_biglittle(node, critical, budget, workload=workload)
        result = execute_on_biglittle(
            node, workload.phases, alloc.big_w, alloc.little_w, alloc.mem_w
        )
        heur = workload.performance(result)
        rows.append(
            (
                budget,
                best.performance,
                heur,
                f"({best.allocation.big_w:.2f}/{best.allocation.little_w:.2f}/"
                f"{best.allocation.mem_w:.2f})",
                "GATED" if best.allocation.big_w < node.big.gate_threshold_w else "on",
            )
        )
    print(
        format_table(
            ["budget (W)", f"best ({workload.metric_unit})",
             f"heuristic ({workload.metric_unit})",
             "best (big/little/mem)", "big cluster"],
            rows,
            float_spec=".4g",
        )
    )
    wake = next((r[0] for r in rows if r[4] == "on"), None)
    if wake is not None:
        print(f"\nwake crossover: the big cluster first pays off at ~{wake:.1f} W")


if __name__ == "__main__":
    main()
