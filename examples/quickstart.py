#!/usr/bin/env python3
"""Quickstart: coordinate power for one workload on one node.

The core loop of power-bounded computing, in ~40 lines:

1. pick a platform and a workload;
2. profile the workload's critical power values (a handful of runs);
3. let COORD split a total budget across the processor and memory domains;
4. execute under the coordinated caps and compare against naive splits.

Run: ``python examples/quickstart.py [budget_watts]``
"""

import sys

from repro import (
    coord_cpu,
    cpu_workload,
    execute_on_host,
    ivybridge_node,
    memory_first_allocation,
    oracle_allocation,
    profile_cpu_workload,
)
from repro.core.allocation import PowerAllocation
from repro.util.tables import format_table


def main() -> None:
    budget_w = float(sys.argv[1]) if len(sys.argv) > 1 else 208.0
    node = ivybridge_node()
    workload = cpu_workload("stream")

    print(f"Node: {node.name} ({node.cpu.n_cores} cores, "
          f"{node.dram.peak_bw_gbps:.0f} GB/s DRAM)")
    print(f"Workload: {workload}")
    print(f"Total power budget: {budget_w:.0f} W\n")

    # Lightweight profiling: the seven critical power values.
    critical = profile_cpu_workload(node.cpu, node.dram, workload)
    print("Critical power values (W):",
          {k: round(v, 1) for k, v in critical.as_dict().items()}, "\n")

    # COORD picks the allocation; compare against naive strategies and
    # the exhaustive sweep oracle.
    decision = coord_cpu(critical, budget_w)
    if not decision.accepted:
        print(f"COORD refused the budget: below the productive threshold "
              f"({critical.productive_threshold_w:.0f} W). Try a larger one.")
        return

    candidates = {
        "COORD (Algorithm 1)": decision.allocation,
        "memory-first [19]": memory_first_allocation(critical, budget_w),
        "uniform 50/50": PowerAllocation(budget_w / 2, budget_w / 2),
        "sweep oracle (4 W steps)": oracle_allocation(
            node.cpu, node.dram, workload, budget_w
        ),
    }

    rows = []
    for name, alloc in candidates.items():
        result = execute_on_host(
            node.cpu, node.dram, workload.phases, alloc.proc_w, alloc.mem_w
        )
        rows.append(
            (
                name,
                alloc.proc_w,
                alloc.mem_w,
                workload.performance(result),
                result.total_power_w,
                "yes" if result.respects_bound else "NO",
            )
        )
    print(
        format_table(
            ["strategy", "P_cpu (W)", "P_mem (W)",
             f"perf ({workload.metric_unit})", "actual (W)", "bound ok"],
            rows,
            float_spec=".1f",
        )
    )
    if decision.surplus_w > 0:
        print(f"\nCOORD reports {decision.surplus_w:.0f} W of reclaimable surplus "
              "for the cluster-level scheduler.")


if __name__ == "__main__":
    main()
