#!/usr/bin/env python3
"""GPU power steering: COORD vs the stock Nvidia capping policy.

Drives the NVML-style interface exactly as a deployment would: set a board
power limit, steer the memory clock per application, and measure.  Shows,
across caps and on both cards, where the application-oblivious default
(memory pinned at the nominal clock) leaves performance on the table.

Run: ``python examples/gpu_power_steering.py [workload]``
(e.g. ``python examples/gpu_power_steering.py minife``)
"""

import sys

from repro import (
    execute_on_gpu,
    gpu_workload,
    profile_gpu_workload,
    titan_v_card,
    titan_xp_card,
)
from repro.core.coord_gpu import apply_gpu_decision, coord_gpu
from repro.core.sweep import sweep_gpu_allocations
from repro.hardware.nvml import NvmlDevice
from repro.util.tables import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gpu-stream"
    workload = gpu_workload(name)
    print(f"Workload: {workload}\n")

    for card in (titan_xp_card(), titan_v_card()):
        device = NvmlDevice(card)
        critical = profile_gpu_workload(card, workload)
        intensive = critical.is_compute_intensive(card.max_cap_w)
        print(f"--- {card.name} "
              f"(caps {card.min_cap_w:.0f}-{card.max_cap_w:.0f} W, "
              f"P_tot_max={critical.tot_max:.0f} W, "
              f"P_tot_ref={critical.tot_ref:.0f} W, "
              f"{'compute' if intensive else 'memory/mixed'} intensive) ---")

        rows = []
        caps = [c for c in (130.0, 150.0, 175.0, 200.0, 250.0, 300.0)
                if card.min_cap_w <= c <= card.max_cap_w]
        for cap in caps:
            # COORD: watts -> memory clock via the empirical power model.
            decision = coord_gpu(critical, cap, hardware_max_w=card.max_cap_w)
            mem_op = apply_gpu_decision(device, decision, cap)
            coord_perf = workload.performance(
                execute_on_gpu(card, workload.phases, device.power_limit_w,
                               mem_op.freq_mhz)
            )
            # Stock policy: memory at nominal, firmware reclaim only.
            device.apply_default_policy(cap_w=cap)
            default_perf = workload.performance(
                execute_on_gpu(card, workload.phases, device.power_limit_w,
                               device.mem_operating_point.freq_mhz)
            )
            # Oracle: full sweep of the memory-clock grid.
            best = sweep_gpu_allocations(card, workload, cap).perf_max
            rows.append(
                (
                    cap,
                    mem_op.freq_mhz,
                    coord_perf,
                    default_perf,
                    best,
                    f"{(coord_perf / default_perf - 1) * 100:+.1f}%",
                    f"{(1 - coord_perf / best) * 100:.1f}%",
                )
            )
        print(
            format_table(
                ["cap (W)", "COORD mem clk (MHz)",
                 f"COORD ({workload.metric_unit})",
                 f"default ({workload.metric_unit})",
                 f"best ({workload.metric_unit})",
                 "vs default", "gap to best"],
                rows,
                float_spec=".4g",
            )
        )
        print()


if __name__ == "__main__":
    main()
