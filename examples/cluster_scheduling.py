#!/usr/bin/env python3
"""Power-bounded batch scheduling: COORD as a cluster building block.

The paper's closing argument: node-level coordination enables higher-level
power scheduling — nodes request an appropriate budget, enforce it with
COORD, and return surplus to the cluster pool.  This example runs a small
job mix through the batch scheduler and reports what the power-aware
admission bought: reclaimed watts, rejections of unproductive budgets, and
a global bound that is never exceeded.

Run: ``python examples/cluster_scheduling.py [global_bound_watts]``
"""

import sys

from repro import Cluster, Job, PowerBoundedScheduler, cpu_workload, ivybridge_node
from repro.util.tables import format_table


def main() -> None:
    bound_w = float(sys.argv[1]) if len(sys.argv) > 1 else 700.0
    cluster = Cluster(node_factory=ivybridge_node, n_nodes=4, global_bound_w=bound_w)
    scheduler = PowerBoundedScheduler(cluster)

    job_mix = [
        ("dgemm", 320.0, 0.0),   # over-asks: surplus gets reclaimed
        ("stream", 220.0, 0.0),
        ("sra", 230.0, 1.0),
        ("mg", 190.0, 2.0),
        ("ep", 80.0, 3.0),       # under-asks: rejected as unproductive
        ("cg", 210.0, 4.0),
        ("ft", 200.0, 5.0),
        ("bt", 260.0, 6.0),
    ]
    for i, (name, request, t) in enumerate(job_mix):
        scheduler.submit(
            Job(job_id=i, workload=cpu_workload(name),
                requested_budget_w=request, submit_time_s=t)
        )

    print(f"Cluster: {cluster.n_nodes} nodes, global bound {bound_w:.0f} W")
    print(f"Queue: {len(job_mix)} jobs\n")
    stats = scheduler.run()

    rows = []
    for record in scheduler.records.values():
        job = record.job
        if record.state.value == "completed":
            rows.append(
                (
                    job.job_id, job.workload.name, job.requested_budget_w,
                    record.granted_budget_w,
                    f"{record.allocation.proc_w:.0f}/{record.allocation.mem_w:.0f}",
                    record.start_time_s, record.finish_time_s,
                    record.state.value,
                )
            )
        else:
            rows.append(
                (job.job_id, job.workload.name, job.requested_budget_w,
                 None, "-", None, None, record.state.value)
            )
    print(
        format_table(
            ["job", "workload", "asked (W)", "granted (W)",
             "P_cpu/P_mem", "start (s)", "finish (s)", "state"],
            rows,
            float_spec=".1f",
        )
    )
    print(f"\ncompleted: {stats.n_completed}, rejected: {stats.n_rejected}")
    print(f"makespan: {stats.makespan_s:.1f} s, "
          f"mean wait: {stats.mean_wait_s:.1f} s, "
          f"throughput: {stats.throughput_jobs_per_hour:.0f} jobs/h")
    print(f"energy: {stats.total_energy_j / 1e3:.1f} kJ")
    print(f"surplus reclaimed by admission: {stats.reclaimed_w_total:.0f} W")
    print(f"peak committed power: {stats.peak_charged_w:.0f} W "
          f"(bound {bound_w:.0f} W — never exceeded)")

    rejected = [r for r in scheduler.records.values() if r.reject_reason]
    for record in rejected:
        print(f"\njob {record.job.job_id} ({record.job.workload.name}) rejected: "
              f"{record.reject_reason}")


if __name__ == "__main__":
    main()
