#!/usr/bin/env python3
"""Scenario atlas: map the six power-allocation categories for a workload.

Reproduces the paper's Figure 3 style analysis for any benchmark and
budget: sweep the memory share, classify each allocation into categories
I–VI from the hardware mechanisms it engages, and report the spans, the
optimum, and the critical component.

Run: ``python examples/scenario_atlas.py [workload] [budget_watts]``
(e.g. ``python examples/scenario_atlas.py mg 208``)
"""

import sys

from repro import cpu_workload, ivybridge_node, sweep_cpu_allocations
from repro.core.analysis import (
    critical_component,
    optimal_intersection,
    scenario_spans,
)
from repro.util.tables import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sra"
    budget_w = float(sys.argv[2]) if len(sys.argv) > 2 else 240.0
    node = ivybridge_node()
    workload = cpu_workload(name)

    sweep = sweep_cpu_allocations(node.cpu, node.dram, workload, budget_w, step_w=4.0)

    print(f"{workload} on {node.name} at P_b = {budget_w:.0f} W")
    print(f"profiled {len(sweep.points)} allocations\n")

    # The per-allocation profile: performance, actual powers, category.
    rows = [
        (
            p.allocation.mem_w,
            p.allocation.proc_w,
            p.performance,
            p.result.proc_power_w,
            p.result.mem_power_w,
            p.scenario.roman,
        )
        for p in sweep.points[:: max(1, len(sweep.points) // 24)]
    ]
    print(
        format_table(
            ["P_mem (W)", "P_cpu (W)", f"perf ({sweep.metric_unit})",
             "actual CPU (W)", "actual DRAM (W)", "cat."],
            rows,
            float_spec=".4g",
            title="allocation profile (subsampled)",
        )
    )

    spans = scenario_spans(sweep)
    print()
    print(
        format_table(
            ["category", "P_mem span (W)", "meaning"],
            [
                (s.roman, f"[{lo:.0f}, {hi:.0f}]", s.description)
                for s, (lo, hi) in sorted(spans.items())
            ],
            title="category spans",
        )
    )

    best = sweep.best
    inter = optimal_intersection(sweep)
    crit = critical_component(node.cpu, node.dram, workload, sweep)
    print(f"\noptimum: {best.allocation} -> {best.performance:.4g} "
          f"{sweep.metric_unit}")
    print(f"optimum sits at: {'|'.join(s.roman for s in inter)}")
    print(f"critical component: {crit or 'none'}")
    print(f"best/worst spread: {sweep.perf_spread:.1f}x")


if __name__ == "__main__":
    main()
