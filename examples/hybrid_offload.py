#!/usr/bin/env python3
"""Hybrid CPU+GPU offload under one node power bound.

A GPU-offload application alternates between host steps and device
kernels; one side idles while the other works.  A coordinator that is
aware of this shifts nearly the whole node budget back and forth per step;
a static host/device split strands the idle side's watts.  This example
quantifies the difference across node bounds.

Run: ``python examples/hybrid_offload.py``
"""

from repro.core.coord import coord_cpu
from repro.core.coord_gpu import coord_gpu
from repro.core.coord_hybrid import (
    HybridDecision,
    coord_hybrid,
    execute_hybrid,
    offload_workload,
)
from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.hardware.platforms import get_platform
from repro.util.tables import format_table
from repro.util.units import clamp


def main() -> None:
    node = get_platform("titan-xp-host")
    card = node.gpu(0)
    workload = offload_workload()
    print(f"Node: {node.name} (host + {card.name})")
    print(f"Workload: {workload.name} — "
          f"{sum(1 for s in workload.steps if s.device == 'cpu')} host steps, "
          f"{sum(1 for s in workload.steps if s.device == 'gpu')} device steps\n")

    host_critical = profile_cpu_workload(node.cpu, node.dram, workload.host_view())
    gpu_critical = profile_gpu_workload(card, workload.gpu_view())

    rows = []
    for budget in (330.0, 360.0, 400.0, 450.0, 500.0):
        dynamic_decision = coord_hybrid(
            node, workload, budget,
            host_critical=host_critical, gpu_critical=gpu_critical,
        )
        dynamic = execute_hybrid(node, workload, dynamic_decision)

        half = clamp(budget / 2.0, card.min_cap_w, card.max_cap_w)
        static = execute_hybrid(
            node, workload,
            HybridDecision(
                host=coord_cpu(host_critical, budget / 2.0),
                gpu=coord_gpu(gpu_critical, half, hardware_max_w=card.max_cap_w),
                gpu_cap_w=half,
                gpu_mem_freq_mhz=card.mem.nominal_mhz,
            ),
        )
        rows.append(
            (
                budget,
                dynamic.performance_gflops,
                static.performance_gflops,
                f"{(dynamic.performance_gflops / static.performance_gflops - 1) * 100:+.1f}%",
                dynamic_decision.gpu_cap_w,
                dynamic.peak_node_power_w,
            )
        )
    print(
        format_table(
            ["node bound (W)", "shifting (GFLOPS)", "static 50/50 (GFLOPS)",
             "gain", "device-step cap (W)", "peak node (W)"],
            rows,
            float_spec=".1f",
        )
    )
    print("\nThe shifting coordinator gives the GPU the host's idle share "
          "during device steps\n(and vice versa), so both step types run "
          "faster under the same node bound.")


if __name__ == "__main__":
    main()
