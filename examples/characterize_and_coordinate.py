#!/usr/bin/env python3
"""From real code to a power plan: characterize a NumPy kernel, coordinate it.

Demonstrates the full onboarding path for a *new* application that is not
in the paper's suite:

1. run the actual kernel (real NumPy computation with analytic op/byte
   accounting);
2. lift the measurement into an execution-model characterization;
3. profile the characterized workload and produce a COORD power plan for a
   range of budgets.

Run: ``python examples/characterize_and_coordinate.py [kernel]``
(kernels: stream, dgemm, sra, cg, is, ep, ft)
"""

import sys

from repro import coord_cpu, execute_on_host, ivybridge_node, profile_cpu_workload
from repro.perfmodel.phase import Phase
from repro.workloads.base import MetricKind, Workload, WorkloadClass
from repro.workloads.characterize import PATTERN_DEFAULTS, characterize_kernel
from repro.workloads.kernels import run_kernel
from repro.util.tables import format_table

#: Rough class guess by analytic intensity (ops per byte).
def classify(intensity: float) -> WorkloadClass:
    if intensity > 8.0:
        return WorkloadClass.COMPUTE_INTENSIVE
    if intensity < 0.05:
        return WorkloadClass.RANDOM_ACCESS
    if intensity < 0.5:
        return WorkloadClass.MEMORY_INTENSIVE
    return WorkloadClass.MIXED


def main() -> None:
    kernel_name = sys.argv[1] if len(sys.argv) > 1 else "cg"
    node = ivybridge_node()

    # 1. Run the real kernel.
    report = run_kernel(kernel_name)
    print(f"kernel {report.name!r}: {report.elapsed_s * 1e3:.1f} ms, "
          f"{report.flops:.3g} ops, {report.bytes_moved:.3g} bytes "
          f"(intensity {report.intensity:.3g} op/B, checksum {report.checksum:.6g})")

    # 2. Characterize: analytic volumes + pattern-class defaults, scaled to
    #    a production problem size.
    wl_class = classify(report.intensity)
    phase: Phase = characterize_kernel(report, wl_class, scale=1e4)
    workload = Workload(
        name=f"user-{kernel_name}",
        suite="user",
        description=f"user kernel {kernel_name} (characterized)",
        device="cpu",
        workload_class=wl_class,
        phases=(phase,),
        metric=MetricKind.GFLOPS,
    )
    defaults = PATTERN_DEFAULTS[wl_class]
    print(f"classified as {wl_class.value}; defaults: activity "
          f"{defaults.activity}, mem efficiency {defaults.memory_efficiency}\n")

    # 3. Profile + coordinate across budgets.
    critical = profile_cpu_workload(node.cpu, node.dram, workload)
    print("critical powers (W):",
          {k: round(v, 1) for k, v in critical.as_dict().items()})
    print(f"productive band: {critical.productive_threshold_w:.0f} W "
          f"... {critical.max_demand_w:.0f} W\n")

    rows = []
    for budget in (100.0, 130.0, 160.0, 190.0, 220.0, 250.0):
        decision = coord_cpu(critical, budget)
        if not decision.accepted:
            rows.append((budget, None, None, None, "rejected (too small)"))
            continue
        result = execute_on_host(
            node.cpu, node.dram, workload.phases,
            decision.allocation.proc_w, decision.allocation.mem_w,
        )
        note = decision.status.value
        if decision.surplus_w > 0:
            note += f" ({decision.surplus_w:.0f} W reclaimable)"
        rows.append(
            (budget, decision.allocation.proc_w, decision.allocation.mem_w,
             workload.performance(result), note)
        )
    print(
        format_table(
            ["budget (W)", "P_cpu (W)", "P_mem (W)", "perf (GFLOPS)", "status"],
            rows,
            float_spec=".1f",
        )
    )


if __name__ == "__main__":
    main()
