"""Coordination server: micro-batched vs unbatched serving throughput.

Drives the real TCP server (``repro.serve``) with a closed-loop load
generator: 256 concurrent asyncio clients walking a fig9-scale
catalogue (one ``budget_curve`` query per registered CPU workload over
the paper's four budgets, 144/176/208/240 W at 2 W steps — dense
enough that each query carries real kernel-and-assembly work) in
**lock-step** — every client asks the same question at the same time,
the cluster-power-event pattern (a budget change makes every node
re-coordinate at once) that a coordination service actually faces.
The same offered load runs three ways:

* **unbatched cold** — ``max_batch=1``: every request is its own flush,
  its own kernel pass, its own executor round-trip (classic
  one-query-per-call serving with a warm engine);
* **batched cold** — the micro-batching coalescer: the admission queue
  drains up to ``max_batch`` requests per flush, identical in-flight
  queries are deduplicated, and each flush's grid work is unioned into
  one batch-kernel pass per (platform, workload, step) partition;
* **batched warm** — the identical load replayed against the same
  (now fully warm) server, which is what the p50/p99 latency SLO is
  measured on.

The headline acceptance number — batched ≥ 3x unbatched throughput at
256 clients, warm p99 ≤ 5x warm p50 — lives in the committed report
(``benchmarks/reports/serve.json``) and is pinned by
``tests/test_report_schema.py``; in-run assertions stick to
machine-independent claims (batched not slower, dedup actually engaged,
served answers bit-identical across clients and to the direct library
call), the same policy as ``bench_batch``.

``--bench-quick`` shrinks the client fleet and skips the second
(batched-warm) replay.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.parallel import SweepEngine
from repro.serve.client import ServeClient
from repro.serve.protocol import Request
from repro.serve.server import CoordServer, ServeConfig
from repro.serve.service import CoordinationService
from repro.workloads import list_cpu_workloads

from _harness import write_json_report, write_text_report

BUDGETS_W = [144.0, 176.0, 208.0, 240.0]
STEP_W = 2.0
MAX_BATCH = 128
MAX_WAIT_US = 5000


def _catalogue() -> list[tuple[str, dict]]:
    """One ``budget_curve`` per CPU workload over the fig9 budgets."""
    return [
        ("budget_curve", {"workload": name, "budgets_w": BUDGETS_W, "step_w": STEP_W})
        for name in list_cpu_workloads()
    ]


async def _drive(
    server: CoordServer,
    host: str,
    port: int,
    n_clients: int,
    per_client: int,
    catalogue: list[tuple[str, dict]],
) -> tuple[float, list[float], dict[int, dict]]:
    """Closed-loop burst; returns (wall_s, latencies_s, results-by-key)."""
    latencies: list[float] = []
    results: dict[int, dict] = {}

    async def one_client(index: int) -> None:
        async with await ServeClient.connect(host, port) as client:
            for step in range(per_client):
                # Lock-step walk: every client asks the same question at
                # the same time — the cluster-power-event pattern (all
                # nodes re-coordinate at once) that in-flight dedup is
                # built to collapse.
                key = step % len(catalogue)
                op, params = catalogue[key]
                start = time.perf_counter()
                reply = await client.request(op, params)
                latencies.append(time.perf_counter() - start)
                assert reply["ok"], reply
                assert not reply["degraded"]
                previous = results.setdefault(key, reply["result"])
                # Fan-in consistency: every client gets the same bits.
                assert reply["result"] == previous

    wall_start = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(n_clients)))
    return time.perf_counter() - wall_start, latencies, results


def _percentiles_ms(latencies: list[float]) -> tuple[float, float]:
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2] * 1000.0
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] * 1000.0
    return p50, p99


async def _bench(n_clients: int, per_client: int, warm_replay: bool) -> dict:
    catalogue = _catalogue()
    out: dict = {"catalogue": len(catalogue)}

    # --- unbatched baseline: one flush (and kernel pass) per request ---
    server = CoordServer(ServeConfig(port=0, max_batch=1, max_wait_us=MAX_WAIT_US))
    host, port = await server.start()
    wall, lat, unbatched_results = await _drive(
        server, host, port, n_clients, per_client, catalogue
    )
    await server.stop()
    out["unbatched_cold"] = {"wall_s": wall, "lat": _percentiles_ms(lat)}

    # --- micro-batched: coalesced flushes, deduped in-flight twins ---
    server = CoordServer(
        ServeConfig(port=0, max_batch=MAX_BATCH, max_wait_us=MAX_WAIT_US)
    )
    host, port = await server.start()
    wall, lat, batched_results = await _drive(
        server, host, port, n_clients, per_client, catalogue
    )
    out["batched_cold"] = {"wall_s": wall, "lat": _percentiles_ms(lat)}

    if warm_replay:
        wall, lat, _ = await _drive(
            server, host, port, n_clients, per_client, catalogue
        )
        out["batched_warm"] = {"wall_s": wall, "lat": _percentiles_ms(lat)}

    out["batcher"] = server.batcher.stats.to_dict()
    out["cache"] = server.service.engine.cache.stats
    await server.stop()

    # Served answers must be bit-identical across serving modes AND to a
    # direct library call on a fresh engine (the differential battery in
    # tests/test_serve.py locks this per-op; the bench spot-checks the
    # whole catalogue end-to-end over the real wire).
    direct = CoordinationService(SweepEngine())
    mismatches = 0
    queried = sorted(set(batched_results) & set(unbatched_results))
    for key in queried:
        op, params = catalogue[key]
        want = direct.resolve(Request(id=None, op=op, params=params)).result
        if batched_results[key] != want or unbatched_results[key] != want:
            mismatches += 1
    out["identity"] = {"queries_checked": len(queried), "mismatches": mismatches}
    return out


def test_serve_bench(bench_quick):
    n_clients = 64 if bench_quick else 256
    per_client = 2 if bench_quick else 4
    outcome = asyncio.run(_bench(n_clients, per_client, warm_replay=not bench_quick))

    n_requests = n_clients * per_client
    w_un = outcome["unbatched_cold"]["wall_s"]
    w_cold = outcome["batched_cold"]["wall_s"]
    speedup_cold = w_un / w_cold
    wall_s = {"unbatched_cold": w_un, "batched_cold": w_cold}
    speedup = {"batched_cold": speedup_cold}
    throughput = {
        "unbatched_cold": n_requests / w_un,
        "batched_cold": n_requests / w_cold,
    }
    latency_ms = {
        "unbatched_cold_p50": outcome["unbatched_cold"]["lat"][0],
        "unbatched_cold_p99": outcome["unbatched_cold"]["lat"][1],
        "batched_cold_p50": outcome["batched_cold"]["lat"][0],
        "batched_cold_p99": outcome["batched_cold"]["lat"][1],
    }
    if "batched_warm" in outcome:
        w_warm = outcome["batched_warm"]["wall_s"]
        wall_s["batched_warm"] = w_warm
        speedup["batched_warm"] = w_un / w_warm
        throughput["batched_warm"] = n_requests / w_warm
        latency_ms["batched_warm_p50"] = outcome["batched_warm"]["lat"][0]
        latency_ms["batched_warm_p99"] = outcome["batched_warm"]["lat"][1]

    batcher = outcome["batcher"]
    lines = [
        "coordination server — micro-batched vs unbatched serving",
        f"({n_clients} concurrent clients x {per_client} budget_curve queries, "
        f"{outcome['catalogue']} CPU workloads, budgets "
        f"{'/'.join(f'{b:g}' for b in BUDGETS_W)} W, step {STEP_W:g} W)",
        "",
        f"unbatched cold (max_batch=1):    {w_un:8.3f} s   "
        f"{throughput['unbatched_cold']:6.0f} req/s",
        f"batched cold (max_batch={MAX_BATCH}):    {w_cold:8.3f} s   "
        f"{throughput['batched_cold']:6.0f} req/s   "
        f"speedup {speedup_cold:5.2f}x",
    ]
    if "batched_warm" in outcome:
        lines.append(
            f"batched warm (replay):           {wall_s['batched_warm']:8.3f} s   "
            f"{throughput['batched_warm']:6.0f} req/s   "
            f"speedup {speedup['batched_warm']:5.2f}x"
        )
    lines += [
        "",
        f"latency p50/p99 (ms): unbatched {latency_ms['unbatched_cold_p50']:.0f}/"
        f"{latency_ms['unbatched_cold_p99']:.0f}, "
        f"batched cold {latency_ms['batched_cold_p50']:.0f}/"
        f"{latency_ms['batched_cold_p99']:.0f}"
        + (
            f", batched warm {latency_ms['batched_warm_p50']:.0f}/"
            f"{latency_ms['batched_warm_p99']:.0f}"
            if "batched_warm" in outcome
            else ""
        ),
        f"coalescer: dedup {batcher['dedup_ratio']:.0%}, occupancy "
        f"{batcher['mean_occupancy']:.0f}, {batcher['prefetch_passes']} union "
        f"kernel passes over {batcher['flushes']} flushes",
        f"identity: {outcome['identity']['queries_checked']} catalogue queries, "
        f"{outcome['identity']['mismatches']} mismatches vs direct library call",
        "",
        "note: under this lock-step load a flush dedups to one or two unique",
        "queries, so the win is overwhelmingly in-flight dedup (the",
        "union-prime kernel pass engages when a flush mixes distinct queries",
        "of one workload; tests/test_serve.py locks that path).  every reply",
        "is assembled by the unchanged library call against the warm shared",
        "cache, so served bytes equal direct-call bytes.",
    ]
    rendered = "\n".join(lines)
    write_text_report("serve", rendered)
    write_json_report(
        "serve",
        op="serve_budget_curves",
        n_points=n_requests,
        wall_s=wall_s,
        speedup=speedup,
        cache=outcome["cache"],
        n_clients=n_clients,
        requests_per_client=per_client,
        latency_ms={k: round(v, 3) for k, v in latency_ms.items()},
        throughput_rps={k: round(v, 1) for k, v in throughput.items()},
        batching={
            "max_batch": MAX_BATCH,
            "max_wait_us": MAX_WAIT_US,
            "dedup_ratio": batcher["dedup_ratio"],
            "mean_occupancy": batcher["mean_occupancy"],
            "flushes": batcher["flushes"],
            "prefetch_passes": batcher["prefetch_passes"],
        },
        identity=outcome["identity"],
        quick=bench_quick,
    )
    print()
    print(rendered)

    # Machine-independent claims only (the >= 3x headline and the p99 SLO
    # are pinned on the committed report by tests/test_report_schema.py):
    # batching must not lose to unbatched, the coalescer must actually
    # dedup this redundant load, and served bits must match direct bits.
    assert speedup_cold >= 1.0
    assert batcher["deduped"] > 0
    assert batcher["mean_occupancy"] > 1.0
    assert outcome["identity"]["mismatches"] == 0
