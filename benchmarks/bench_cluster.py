"""Cluster-level scheduling study: FCFS grants vs dynamic rebalancing."""


def test_cluster(regenerate):
    report = regenerate("cluster")
    data = report.data["bounds"]

    for bound, outcomes in data.items():
        base, dyn = outcomes["fcfs"], outcomes["rebalance"]
        # Same work gets done under both policies...
        assert dyn.n_completed == base.n_completed
        # ... the global bound is never exceeded by either...
        assert base.peak_charged_w <= bound + 1e-6
        assert dyn.peak_charged_w <= bound + 1e-6
        # ... and rebalancing never meaningfully extends the makespan
        # (non-preemptive boosts allow sub-percent slippage on unlucky
        # arrival patterns).
        assert dyn.makespan_s <= base.makespan_s * 1.02 + 1e-6

    # Rebalancing actually fires and buys double-digit makespan somewhere.
    gains = [
        1.0 - outcomes["rebalance"].makespan_s / outcomes["fcfs"].makespan_s
        for outcomes in data.values()
    ]
    assert max(gains) > 0.10
    assert any(outcomes["rebalance"].n_boosts > 0 for outcomes in data.values())

    # Admission trims over-asking jobs (surplus reclaim) at every bound.
    assert all(outcomes["fcfs"].reclaimed_w_total > 0 for outcomes in data.values())
