"""big.LITTLE extension: the wake crossover and heuristic accuracy."""

import numpy as np


def test_biglittle(regenerate):
    report = regenerate("biglittle")
    rows = report.data["rows"]

    # The optimum gates the big cluster at tiny budgets and wakes it at a
    # workload-specific crossover.
    crossovers = report.data["crossover"]
    assert all(np.isfinite(v) for v in crossovers.values())
    assert any(d["big_gated"] for d in rows.values())
    assert any(not d["big_gated"] for d in rows.values())

    # The candidate-probing heuristic tracks the fine sweep outside the
    # crossover window and never loses badly inside it.
    gaps = [1.0 - d["coord"] / d["best"] for d in rows.values()]
    assert max(gaps) < 0.30
    assert float(np.mean(gaps)) < 0.08

    # Gate-aware coordination beats both-clusters-always-on naive
    # allocation somewhere (the homogeneous-thinking penalty).
    naive_losses = [
        1.0 - d["naive"] / d["best"]
        for d in rows.values()
        if np.isfinite(d["naive"])
    ]
    assert naive_losses and max(naive_losses) > 0.10
