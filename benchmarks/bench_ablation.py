"""Ablations: gamma sensitivity, sweep stepping, memory-first gap."""


def test_ablation(regenerate):
    report = regenerate("ablation")

    # (A) gamma = 0.5 (the paper's empirical choice) is near-best.
    gamma_data = report.data["gamma"]
    keys = {(wl, cap) for (wl, cap, _g) in gamma_data}
    for wl, cap in keys:
        by_gamma = {
            g: gamma_data[(w, c, g)]["perf"]
            for (w, c, g) in gamma_data
            if (w, c) == (wl, cap)
        }
        assert by_gamma[0.5] >= 0.90 * max(by_gamma.values()), (wl, cap)

    # (B) finer sweeps never find worse optima; 32 W stepping costs real
    # performance for at least one workload (the paper's observation that
    # a coarse sweep can be beaten by the heuristic).
    step_data = report.data["stepping"]
    losses_at_32 = [
        1.0 - row["perf"] / row["reference"]
        for (wl, b, s), row in step_data.items()
        if s == 32.0
    ]
    assert max(losses_at_32) > 0.0

    # (C) COORD matches or beats memory-first essentially everywhere.
    mf_data = report.data["memory_first"]
    assert all(row["coord"] >= 0.90 * row["memory_first"] for row in mf_data.values())
    # ... and wins by > 20 % somewhere in the starved-budget regime.
    assert any(row["coord"] > 1.2 * row["memory_first"] for row in mf_data.values())
