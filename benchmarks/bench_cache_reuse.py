"""Cross-process persistent-cache smoke: two processes, one cache dir.

The disk cache's whole reason to exist is reuse *across* processes — a
cold CLI run populates ``REPRO_CACHE_DIR``, a later run in a different
process is served from it.  The unit tests in ``tests/test_diskcache.py``
lock the cache semantics in-process; this smoke exercises the real
deployment path end to end:

1. spawn a fresh interpreter that runs the fig2 fast experiment in
   adaptive mode with ``REPRO_CACHE_DIR`` pointing at an empty directory
   (expected: zero disk hits, segments published on flush);
2. spawn a second fresh interpreter with the same environment
   (expected: every model execution served from disk — disk hits equal
   the first process's misses, and zero new misses reach the model).

Both processes resolve the cache directory purely from the environment
variable, so this also smokes the ``resolve_cache_dir`` plumbing that
the CLI relies on.  Runs in ``make cache-smoke`` / CI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Runs inside a fresh interpreter.  The engine is built with defaults so
# cache_dir comes from REPRO_CACHE_DIR and mode from REPRO_SWEEP — the
# exact resolution path a CLI user hits.
_CHILD = """\
import json, sys
from repro.core.parallel import SweepEngine, resolve_cache_dir, resolve_mode
from repro.experiments.registry import run_experiment

engine = SweepEngine(n_jobs=1)
run_experiment("fig2", fast=True, engine=engine)
engine.flush()
stats = engine.stats
json.dump(
    {
        "mode": resolve_mode(None),
        "cache_dir": str(resolve_cache_dir(None)),
        "misses": stats.misses,
        "disk_hits": stats.disk_hits,
    },
    sys.stdout,
)
"""


def _run_child(env: dict[str, str]) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_cache_reuse_across_processes(tmp_path):
    src = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_SWEEP"] = "adaptive"

    cold = _run_child(env)
    warm = _run_child(env)

    for run in (cold, warm):
        assert run["mode"] == "adaptive"
        assert run["cache_dir"] == env["REPRO_CACHE_DIR"]

    # Cold process starts from an empty directory and publishes on flush.
    assert cold["disk_hits"] == 0
    assert cold["misses"] > 0
    segments = list((tmp_path / "cache").glob("seg-*.jsonl"))
    assert segments, "cold process did not publish any cache segments"

    # Warm process re-executes nothing: every lookup the planner issues
    # is served by the persistent cache the cold process wrote.
    assert warm["misses"] == 0
    assert warm["disk_hits"] == cold["misses"]

    print(
        f"\ncross-process cache reuse: cold misses={cold['misses']} -> "
        f"warm disk_hits={warm['disk_hits']} (0 re-executions)"
    )
