"""Extension studies: adaptive, online, efficiency, co-scheduling."""

import numpy as np


def test_extensions(regenerate):
    report = regenerate("extensions")

    # (A) Per-phase adaptation never badly hurts and wins visibly on at
    # least one multi-phase code.
    speedups = [c.speedup for c in report.data["adaptive"].values()]
    assert min(speedups) > 0.90
    assert max(speedups) > 1.10

    # (B) Online shifting approaches COORD where profiles exist but burns
    # measurement epochs doing it.
    for row in report.data["online"].values():
        if np.isfinite(row["coord"]) and row["coord"] > 0:
            assert row["online"] >= 0.55 * row["coord"]
            assert row["epochs"] >= 2

    # (C) Efficiency peaks inside the budget range — neither starved nor
    # over-provisioned budgets are efficient.
    for name, curve in report.data["efficiency"].items():
        budgets = curve.budgets_w
        peak = curve.peak_efficiency_budget_w
        assert budgets.min() < peak <= budgets.max()
        # Compute-bound DGEMM's perf scales near-linearly with power, so
        # its perf/W varies less than the memory-bound codes'.
        floor = 1.05 if name == "dgemm" else 1.2
        assert curve.perf_per_watt.max() / curve.perf_per_watt.min() > floor, name

    # (D) Complementary tenants co-run better than time-sharing the node.
    dgemm_stream = report.data["coschedule"][("dgemm", "stream")]
    assert dgemm_stream.weighted_speedup > 1.0
    # The search found an asymmetric slice: the compute-bound tenant gives
    # up bandwidth share relative to its core share.
    a = dgemm_stream.tenant_a
    assert a.bw_fraction < a.core_fraction

    # (E) Budget shifting beats the static host/device split for the
    # offload application, while respecting the node bound.
    for budget, row in report.data["hybrid"].items():
        assert row["dynamic"].performance_gflops >= row["static"].performance_gflops
        assert row["dynamic"].peak_node_power_w <= budget + 1e-6
