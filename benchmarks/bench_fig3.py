"""Figure 3: the six-category scenario taxonomy (SRA @ 240 W, IvyBridge)."""

from repro.core.scenario import Scenario


def test_fig3(regenerate):
    report = regenerate("fig3")
    spans = report.data["spans"]

    # All six categories appear at this budget.
    assert set(spans) == set(Scenario)

    # Their layout along the memory axis matches the paper's figure.
    order = [Scenario.V, Scenario.III, Scenario.I, Scenario.II, Scenario.IV, Scenario.VI]
    mids = [sum(spans[s]) / 2 for s in order]
    assert mids == sorted(mids)

    # Scenario I spans the paper's P_mem ~ [120, 132] W window.
    lo, hi = spans[Scenario.I]
    assert 108.0 <= lo <= 126.0
    assert 120.0 <= hi <= 140.0

    # Scenario VI delivers the worst performance and violates the bound.
    sweep = report.data["sweep"]
    assert sweep.worst.scenario is Scenario.VI
    assert not sweep.worst.result.respects_bound
