"""Parallel sweep engine: wall-clock and cache-hit accounting.

Runs a Figure-9-scale CPU sweep grid (every registered CPU workload at
four budgets, 4 W steps) three ways:

* **serial** — the oracle configuration, ``n_jobs=1`` with a cache too
  small to ever hit;
* **parallel cold** — ``n_jobs=4`` thread pool, empty cache;
* **parallel warm** — the same engine re-running the identical grid,
  which must be served almost entirely from the memo cache.

Both fan-out passes pin ``batch=False, serial_crossover=0`` so this
benchmark keeps measuring the *pool*, not the vectorized kernel (see
``bench_batch.py`` for that) — with the default crossover of
:data:`~repro.core.parallel.SERIAL_CROSSOVER` points, fig9-sized
per-sweep grids (< 60 points each) would silently run serial.

The report lands in ``benchmarks/reports/parallel.txt`` (+ ``.json``).
The headline acceptance number is the cache-hit ratio: on multi-core
hosts the pool also buys wall-clock, but the model is pure Python
(GIL-bound), so on single-core runners the documented win is
memoization — a warm hit ratio of ≥ 50 % across the whole session and a
warm pass that is an order of magnitude faster than any executing pass.

A second section guards the cold-parallel fix.  The thread-pool pass
above is the historical regression scenario (cold ``n_jobs=4`` at
~0.84x serial: every point crosses the pool boundary individually), and
the guard asserts its replacement — the chunked process backend, which
ships one contiguous kernel pass per worker — beats the same serial
oracle cold on a crossover-sized grid, ``>= 1.0x``, best-of-3.
"""

from __future__ import annotations

import time

from repro.core.parallel import SERIAL_CROSSOVER, SweepEngine
from repro.core.sweep import sweep_cpu_allocations
from repro.hardware.platforms import ivybridge_node
from repro.workloads import cpu_workload, list_cpu_workloads

from _harness import write_json_report, write_text_report

BUDGETS_W = (144.0, 176.0, 208.0, 240.0)
STEP_W = 4.0


def _run_grid(node, workloads, engine) -> tuple[float, int]:
    """Sweep every (workload, budget) pair; return (seconds, points)."""
    points = 0
    start = time.perf_counter()
    for wl in workloads:
        for budget in BUDGETS_W:
            sweep = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, step_w=STEP_W, engine=engine
            )
            points += len(sweep.points)
    return time.perf_counter() - start, points


def _best_of(reps: int, run) -> float:
    """Best-of-``reps`` wall-clock for a cold setup/run pair."""
    best = float("inf")
    for _ in range(reps):
        engine, sweep_once = run()
        start = time.perf_counter()
        sweep_once(engine)
        best = min(best, time.perf_counter() - start)
    return best


def _chunked_guard(node) -> dict:
    """Cold chunked fan-out vs the serial oracle on a crossover-sized grid."""
    wl = cpu_workload("dgemm")

    def sweep_once(engine):
        return sweep_cpu_allocations(
            node.cpu, node.dram, wl, 300.0, step_w=1.0,
            mem_min_w=16.0, proc_min_w=8.0, engine=engine,
        )

    t_serial = _best_of(
        3, lambda: (SweepEngine(n_jobs=1, cache_size=1, batch=False), sweep_once)
    )
    t_chunked = _best_of(
        3,
        lambda: (SweepEngine(n_jobs=4, backend="process", batch=True), sweep_once),
    )
    probe = SweepEngine(n_jobs=4, backend="process", batch=True)
    n_points = len(sweep_once(probe).points)
    assert n_points >= SERIAL_CROSSOVER
    assert probe.stats.misses == n_points  # each point executed exactly once
    assert probe.stats.hits == 0
    return {
        "n_points": n_points,
        "serial_cold_s": t_serial,
        "chunked_cold_s": t_chunked,
        "speedup": t_serial / t_chunked,
    }


def test_parallel_engine_bench():
    node = ivybridge_node()
    workloads = [cpu_workload(name) for name in list_cpu_workloads()]

    serial = SweepEngine(n_jobs=1, cache_size=1, batch=False)
    t_serial, n_points = _run_grid(node, workloads, serial)

    parallel = SweepEngine(n_jobs=4, batch=False, serial_crossover=0)
    t_cold, _ = _run_grid(node, workloads, parallel)
    t_warm, _ = _run_grid(node, workloads, parallel)

    stats = parallel.stats
    speedup_cold = t_serial / t_cold
    speedup_warm = t_serial / t_warm
    chunked = _chunked_guard(node)

    lines = [
        "parallel sweep engine — fig9-scale CPU grid "
        f"({len(workloads)} workloads x {len(BUDGETS_W)} budgets, "
        f"step {STEP_W:g} W, {n_points} points/pass)",
        "",
        f"serial (n_jobs=1, uncached):   {t_serial:8.3f} s",
        f"parallel cold (n_jobs=4):      {t_cold:8.3f} s   "
        f"speedup {speedup_cold:5.2f}x",
        f"parallel warm (cache reuse):   {t_warm:8.3f} s   "
        f"speedup {speedup_warm:5.2f}x",
        "",
        f"cache: hits={stats.hits} misses={stats.misses} "
        f"evictions={stats.evictions} size={stats.size}/{stats.maxsize}",
        f"cache hit ratio: {stats.hit_ratio:.1%}",
        "",
        "note: fan-out forced via serial_crossover=0 (default crossover is",
        f"{SERIAL_CROSSOVER} points: grids smaller than that run serial",
        "because pool setup costs more than it saves cold).  The execution",
        "model is pure Python, so thread fan-out only buys wall-clock where",
        "cores are available; the memo cache is the machine-independent win",
        "(warm passes re-execute nothing).",
        "",
        "cold-parallel guard — crossover-sized grid "
        f"({chunked['n_points']} points, dgemm @ 300 W, 1 W step):",
        f"serial oracle cold (best of 3):  {chunked['serial_cold_s']:8.3f} s",
        f"chunked process cold (n_jobs=4): {chunked['chunked_cold_s']:8.3f} s   "
        f"speedup {chunked['speedup']:5.2f}x",
        "(the thread-pool pass above is the historical 0.84x regression",
        "scenario; the chunked backend replaces it and must stay >= 1.0x)",
    ]
    rendered = "\n".join(lines)
    write_text_report("parallel", rendered)
    write_json_report(
        "parallel",
        op="parallel_cpu_sweep",
        n_points=n_points,
        wall_s={
            "serial_cold": t_serial,
            "parallel_cold": t_cold,
            "parallel_warm": t_warm,
            "chunked_serial_cold": chunked["serial_cold_s"],
            "chunked_cold": chunked["chunked_cold_s"],
        },
        speedup={
            "parallel_cold": speedup_cold,
            "parallel_warm": speedup_warm,
            "chunked_cold": chunked["speedup"],
        },
        cache=stats,
        chunked_grid_points=chunked["n_points"],
        serial_crossover_default=SERIAL_CROSSOVER,
        grid={
            "workloads": len(workloads),
            "budgets_w": list(BUDGETS_W),
            "step_w": STEP_W,
        },
    )
    print()
    print(rendered)

    # The warm pass must be served from cache: every point a hit, zero
    # new misses, session hit ratio >= 50 % (cold misses vs warm hits).
    assert stats.misses == n_points
    assert stats.hits == n_points
    assert stats.hit_ratio >= 0.5
    assert t_warm < t_cold
    # The cold-parallel fix must hold: chunked n_jobs=4 >= 1.0x serial.
    assert chunked["speedup"] >= 1.0
