"""Figure 2: upper performance bound vs total budget (DGEMM, SRA; 2 CPUs)."""

import numpy as np


def test_fig2(regenerate):
    report = regenerate("fig2")
    for wl in ("dgemm", "sra"):
        for plat in ("ivybridge", "haswell"):
            curve = report.data[wl][plat]
            # Monotone, then saturating.
            assert np.all(np.diff(curve.perf_max) >= -1e-9)
            assert curve.perf_max[-1] == np.max(curve.perf_max)

    # DGEMM on IvyBridge flattens near the paper's ~240 W.
    sat = report.data["dgemm"]["ivybridge"].saturation_budget_w
    assert 200.0 <= sat <= 260.0

    # Haswell (DDR4) delivers better performance at small budgets.
    for wl in ("dgemm", "sra"):
        assert report.data[wl]["haswell"].perf_max[0] > report.data[wl]["ivybridge"].perf_max[0]
