"""Figure 8: performance profiles of every benchmark on the platforms."""

from repro.workloads import list_cpu_workloads, list_gpu_workloads


def test_fig8(regenerate):
    report = regenerate("fig8")

    # Coverage: every Table 3 benchmark is profiled on its platforms.
    for name in list_cpu_workloads():
        assert any(k.startswith(f"ivybridge/{name}/") for k in report.data)
        assert any(k.startswith(f"haswell/{name}/") for k in report.data)
    for name in list_gpu_workloads():
        assert any(k.startswith(f"titan-xp/{name}/") for k in report.data)

    # Universal pattern: coordination matters for every CPU benchmark
    # (best/worst spread well above 1 at the 208 W budget).
    for name in list_cpu_workloads():
        sweep = report.data[f"ivybridge/{name}/208"]
        assert sweep.perf_spread > 2.0, name

    # Workload-specific features: memory-intensive codes put more of the
    # optimum's watts into DRAM than compute-intensive ones.
    mg = report.data["ivybridge/mg/208"].best.allocation.mem_w
    dgemm = report.data["ivybridge/dgemm/208"].best.allocation.mem_w
    assert mg > dgemm
