"""Figure 4: allocation patterns across budgets (SRA, EP-DGEMM)."""

from repro.core.scenario import Scenario


def test_fig4(regenerate):
    report = regenerate("fig4")

    sra_sweeps = report.data["sra"]
    # Categories shrink in number as the budget shrinks, ...
    n_cats = {b: len(set(s.scenarios)) for b, s in sra_sweeps.items()}
    budgets = sorted(n_cats)
    assert n_cats[budgets[0]] <= n_cats[budgets[-1]]
    # ... and the first to go is the high-performing scenario I.
    assert Scenario.I in set(sra_sweeps[240.0].scenarios)
    assert Scenario.I not in set(sra_sweeps[176.0].scenarios)

    # perf_max increases with the budget for both workloads.
    for wl in ("sra", "dgemm"):
        sweeps = report.data[wl]
        perfs = [sweeps[b].perf_max for b in sorted(sweeps)]
        assert perfs == sorted(perfs)
