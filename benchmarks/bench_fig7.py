"""Figure 7: GPU performance vs memory power allocation under various caps."""

import numpy as np


def test_fig7(regenerate):
    report = regenerate("fig7")

    # Compute-intensive (SGEMM on XP): capped performance falls as memory
    # power rises — watts flow from SMs to the memory PHY (category II).
    sgemm_200 = report.data["titan-xp/sgemm"][200.0]
    assert sgemm_200.performances[0] >= sgemm_200.performances[-1]

    # Memory-intensive (STREAM on XP): rises with memory power at a large
    # cap (category III) and the per-cap curves overlap at the top...
    s230 = report.data["titan-xp/gpu-stream"][230.0]
    s260 = report.data["titan-xp/gpu-stream"][260.0]
    assert s230.performances[-1] >= s230.performances[0]
    assert np.allclose(s230.performances, s260.performances, rtol=1e-6)

    # ... but rises-then-falls at a starved cap (category II region).
    s140 = report.data["titan-xp/gpu-stream"][140.0]
    best_idx = int(np.argmax(s140.performances))
    assert 0 < best_idx < len(s140.performances) - 1

    # In-between (CloverLeaf): per-cap curves diverge rather than overlap.
    c200 = report.data["titan-xp/cloverleaf"][200.0]
    c260 = report.data["titan-xp/cloverleaf"][260.0]
    assert c260.performances[-1] > c200.performances[-1] * 1.02

    # Titan V: memory-bound, performance rises with the memory clock.
    for wl in ("gpu-stream", "minife"):
        for sweep in report.data[f"titan-v/{wl}"].values():
            assert sweep.performances[-1] >= sweep.performances[0]
