"""Figure 9: COORD vs sweep oracle, memory-first, and the Nvidia default."""

import numpy as np


def test_fig9(regenerate):
    report = regenerate("fig9")

    # CPU accuracy: paper reports < 5 % gap for large caps, 9.6 % average.
    gaps, large = [], []
    for (name, budget), row in report.data["cpu"].items():
        if not np.isfinite(row["coord"]):
            continue
        gap = 1.0 - row["coord"] / row["best"]
        gaps.append(gap)
        if budget >= 208.0:
            large.append(gap)
    assert np.mean(gaps) < 0.13
    assert np.mean(large) < 0.05

    # COORD generally outperforms memory-first at small budgets.
    small = [
        (row["coord"], row["memory_first"])
        for (name, budget), row in report.data["cpu"].items()
        if budget <= 176.0 and np.isfinite(row["coord"])
    ]
    wins = sum(c >= m * 0.999 for c, m in small)
    assert wins >= 0.7 * len(small)

    # GPU accuracy: paper reports < 2 % gap.
    gpu_gaps = [1.0 - r["coord"] / r["best"] for r in report.data["gpu"].values()]
    assert np.mean(gpu_gaps) < 0.04

    # COORD beats the Nvidia default by a double-digit percentage for at
    # least one budget-starved application, and never badly loses.
    advantage = [r["coord"] / r["default"] - 1.0 for r in report.data["gpu"].values()]
    assert max(advantage) > 0.08
    assert min(advantage) > -0.10
