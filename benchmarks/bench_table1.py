"""Table 1: optimal allocation and critical component vs power budget."""

from repro.core.scenario import Scenario


def test_table1(regenerate):
    report = regenerate("table1")
    rows = {r.budget_w: r for r in report.data["rows"]}

    # Large budget: optimum inside scenario I, no critical component.
    assert Scenario.I in rows[280.0].intersection
    assert rows[280.0].critical is None

    # 224 W: II|III intersection, DRAM critical, optimum near the paper's
    # (108, 116) W at the plateau's low-memory edge.
    assert set(rows[224.0].intersection) == {Scenario.II, Scenario.III}
    assert rows[224.0].critical == "DRAM"

    # Shrinking budgets: the optimum migrates down the scenario ladder
    # and the CPU becomes the critical component.
    assert Scenario.IV in rows[150.0].intersection
    assert rows[150.0].critical == "CPU"

    # The valid-scenario set shrinks monotonically with the budget.
    budgets = sorted(rows, reverse=True)
    sizes = [len(rows[b].valid_scenarios) for b in budgets]
    assert sizes == sorted(sizes, reverse=True)

    # perf_max is monotone in the budget.
    perfs = [rows[b].perf_max for b in budgets]
    assert perfs == sorted(perfs, reverse=True)
