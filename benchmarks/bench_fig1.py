"""Figure 1: Stream under power bounds (CPU + GPU motivating example)."""


def test_fig1(regenerate):
    report = regenerate("fig1")

    # perf_max rises with the budget and then flattens (both devices).
    cpu = report.data["cpu_curve"]["perf"]
    assert cpu[-1] >= cpu[0]
    assert abs(cpu[-1] - cpu[-2]) <= 1e-6 * max(cpu[-1], 1.0)
    gpu = report.data["gpu_curve"]["perf"]
    assert gpu[-1] >= gpu[0]

    # Allocation matters enormously at the fixed budgets: paper reports
    # up to 30x on the CPU at 208 W and > 30 % on the GPU at 140 W.
    assert report.data["cpu_sweep"].perf_spread > 10.0
    assert report.data["gpu_sweep"].perf_spread > 1.25

    # Capping keeps every bound-respecting allocation under budget.
    for point in report.data["cpu_sweep"].points:
        if point.result.respects_bound:
            assert point.actual_total_w <= 208.0 + 1e-6
