"""Micro-benchmarks of the library's hot paths.

Not a paper artifact: these time the building blocks every experiment is
made of, so regressions in the simulator core show up directly.
"""

import pytest

from repro.core.profiler import profile_cpu_workload
from repro.core.sweep import sweep_cpu_allocations, sweep_gpu_allocations
from repro.hardware.platforms import ivybridge_node, titan_xp_card
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.workloads import cpu_workload, gpu_workload


@pytest.fixture(scope="module")
def node():
    return ivybridge_node()


@pytest.fixture(scope="module")
def card():
    return titan_xp_card()


def test_execute_on_host_single_run(benchmark, node):
    wl = cpu_workload("mg")  # multi-phase: the expensive case
    result = benchmark(
        execute_on_host, node.cpu, node.dram, wl.phases, 150.0, 90.0
    )
    assert result.elapsed_s > 0


def test_execute_on_gpu_single_run(benchmark, card):
    wl = gpu_workload("cloverleaf")
    result = benchmark(execute_on_gpu, card, wl.phases, 200.0, 5000.0)
    assert result.elapsed_s > 0


def test_cpu_allocation_sweep(benchmark, node):
    wl = cpu_workload("sra")
    sweep = benchmark(
        sweep_cpu_allocations, node.cpu, node.dram, wl, 240.0, step_w=4.0
    )
    assert len(sweep.points) > 40


def test_gpu_allocation_sweep(benchmark, card):
    wl = gpu_workload("minife")
    sweep = benchmark(sweep_gpu_allocations, card, wl, 200.0)
    assert len(sweep.points) > 20


def test_lightweight_profiling(benchmark, node):
    wl = cpu_workload("bt")
    critical = benchmark(profile_cpu_workload, node.cpu, node.dram, wl)
    assert critical.cpu_l1 > critical.cpu_l4
