"""Shared benchmark harness utilities.

Each benchmark regenerates one paper artifact (figure or table) at full
sweep resolution, times it with pytest-benchmark, writes the rendered
rows/series to ``benchmarks/reports/<id>.txt`` plus a machine-readable
``<id>.json`` (see :mod:`_harness`), and asserts the headline shape
claims hold.  Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to also see the rendered tables inline, and ``--bench-quick``
for abbreviated passes (what ``make bench-smoke`` runs in CI).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import run_experiment
from repro.experiments.report import ExperimentReport

from _harness import REPORTS_DIR, write_json_report, write_text_report

__all__ = ["REPORTS_DIR"]


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--bench-quick",
        action="store_true",
        default=False,
        help="abbreviated benchmark passes (CI smoke; same grids, fewer rounds)",
    )


@pytest.fixture
def bench_quick(request: pytest.FixtureRequest) -> bool:
    """True when the run should minimise repeats (``--bench-quick``)."""
    return bool(request.config.getoption("--bench-quick"))


@pytest.fixture
def regenerate(benchmark):
    """Run an experiment under the timer and persist its rendered report."""

    def _run(experiment_id: str) -> ExperimentReport:
        timings: list[float] = []

        def _timed_run(eid: str) -> ExperimentReport:
            start = time.perf_counter()
            rep = run_experiment(eid)
            timings.append(time.perf_counter() - start)
            return rep

        report = benchmark.pedantic(
            _timed_run, args=(experiment_id,), rounds=3, iterations=1,
            warmup_rounds=0,
        )
        rendered = report.render()
        write_text_report(experiment_id, rendered)
        n_points = sum(
            len(series)
            for series in report.data.values()
            if hasattr(series, "__len__")
        )
        write_json_report(
            experiment_id,
            op=f"experiment:{experiment_id}",
            n_points=n_points,
            wall_s={"best": min(timings), "mean": sum(timings) / len(timings)},
            title=report.title,
            rounds=len(timings),
        )
        print()
        print(rendered)
        return report

    return _run
