"""Shared benchmark harness utilities.

Each benchmark regenerates one paper artifact (figure or table) at full
sweep resolution, times it with pytest-benchmark, writes the rendered
rows/series to ``benchmarks/reports/<id>.txt``, and asserts the headline
shape claims hold.  Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to also see the rendered tables inline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import run_experiment
from repro.experiments.report import ExperimentReport

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture
def regenerate(benchmark):
    """Run an experiment under the timer and persist its rendered report."""

    def _run(experiment_id: str) -> ExperimentReport:
        report = benchmark.pedantic(
            run_experiment, args=(experiment_id,), rounds=3, iterations=1,
            warmup_rounds=0,
        )
        REPORTS_DIR.mkdir(exist_ok=True)
        rendered = report.render()
        (REPORTS_DIR / f"{experiment_id}.txt").write_text(rendered + "\n")
        print()
        print(rendered)
        return report

    return _run
