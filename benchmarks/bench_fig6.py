"""Figure 6: GPU upper performance bound vs cap (SGEMM, MiniFE; 2 cards)."""

import numpy as np


def test_fig6(regenerate):
    report = regenerate("fig6")

    # Titan XP: SGEMM never flattens (demands > 300 W)...
    xp_sgemm = report.data["titan-xp/sgemm"]["curve"]
    assert xp_sgemm.perf_max[-1] > xp_sgemm.perf_max[-4] * 1.01
    # ... while MiniFE saturates near the paper's ~180 W.
    xp_minife = report.data["titan-xp/minife"]["curve"]
    assert xp_minife.saturation_budget_w <= 200.0

    # Titan V: SGEMM saturates within the range, MiniFE flat above ~180 W.
    v_sgemm = report.data["titan-v/sgemm"]["curve"]
    assert v_sgemm.saturation_budget_w <= 230.0
    v_minife = report.data["titan-v/minife"]["curve"]
    assert v_minife.saturation_budget_w <= 185.0

    # The default capping policy fails to reach the bound somewhere.
    worst_shortfall = max(
        float(np.max(1.0 - d["default"] / d["curve"].perf_max))
        for d in report.data.values()
    )
    assert worst_shortfall > 0.05
