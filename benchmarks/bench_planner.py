"""Adaptive sweep planner: executed-point reduction and disk-cache reuse.

Three paper-scale workloads, each run in ``full`` (oracle) and
``adaptive`` (planner) mode with answer equality checked in-run:

* **fig2 curves** — dgemm + sra budget curves on both CPU nodes
  (120–300 W, 10 W apart, 6 W allocation steps);
* **fig6 curves** — sgemm + minife cap curves on both GPU cards
  (130–300 W, 10 W apart, full clock grid);
* **fig9 grid** — the Figure-9 experiment's sweep load: every CPU
  workload at four budgets (4 W steps) on IvyBridge plus every GPU
  workload at the in-range caps on both cards.

Each config times four passes, best-of-5 (min): **cold** passes build a
fresh engine per repeat, **warm** passes re-run the identical load on
the engine the cold pass populated.  The acceptance claims:

* deterministic *model-point counts* — the planner answers bit-for-bit
  identically while executing at least 3x fewer points on every config;
* *wall-clock dominance* — with planner stages resolving through the
  vectorized batch kernel, adaptive beats the full sweep cold AND warm
  on every config (``speedup["<label>_cold"]``/``["<label>_warm"]`` in
  ``reports/planner.json``, both >= 1.0x);
* the fig9 grid additionally runs cold-vs-warm against a persistent
  disk cache (``SweepEngine(cache_dir=...)``): the warm pass re-plans
  from a fresh process-like engine whose lookups are all served from
  disk, and must be at least 5x faster than the cold pass.

``--bench-quick`` runs single repeats, skips the full-oracle fig9
equivalence spot check (``tests/test_planner_equivalence.py`` locks it
exhaustively anyway), and skips the wall-clock floors (single repeats
are too noisy to gate on).
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.core.parallel import SweepEngine
from repro.core.planner import (
    adaptive_cpu_budget_curve,
    adaptive_gpu_budget_curve,
    plan_cpu_sweep,
    plan_gpu_sweep,
)
from repro.core.sweep import (
    cpu_budget_curve,
    gpu_budget_curve,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.experiments.fig9 import CPU_BUDGETS_W, GPU_CAPS_W
from repro.hardware.platforms import (
    haswell_node,
    ivybridge_node,
    titan_v_card,
    titan_xp_card,
)
from repro.workloads import (
    cpu_workload,
    gpu_workload,
    list_cpu_workloads,
    list_gpu_workloads,
)

from _harness import write_json_report, write_text_report

FIG2_BUDGETS = np.arange(120.0, 301.0, 10.0)
FIG2_STEP_W = 6.0
FIG6_CAPS = np.arange(130.0, 301.0, 10.0)
FIG9_STEP_W = 4.0

MIN_POINT_RATIO = 3.0
#: Disk-warm floor vs the cold pass that populated the cache.  The cold
#: baseline is itself batch-kernel-fast now (the planner's stages run
#: vectorized), which compresses this ratio from the ~10x of the scalar
#: planner era; 3x still proves warm planning never touches the model.
MIN_DISK_WARM_SPEEDUP = 3.0


def _fig2_curves(engine, adaptive: bool):
    curves = []
    fn = adaptive_cpu_budget_curve if adaptive else cpu_budget_curve
    for node in (ivybridge_node(), haswell_node()):
        for name in ("dgemm", "sra"):
            curves.append(
                fn(
                    node.cpu,
                    node.dram,
                    cpu_workload(name),
                    FIG2_BUDGETS,
                    step_w=FIG2_STEP_W,
                    engine=engine,
                )
            )
    return curves


def _fig6_curves(engine, adaptive: bool):
    curves = []
    fn = adaptive_gpu_budget_curve if adaptive else gpu_budget_curve
    for card in (titan_xp_card(), titan_v_card()):
        caps = FIG6_CAPS[
            (FIG6_CAPS >= card.min_cap_w) & (FIG6_CAPS <= card.max_cap_w)
        ]
        for name in ("sgemm", "minife"):
            curves.append(
                fn(card, gpu_workload(name), caps, freq_stride=1, engine=engine)
            )
    return curves


def _fig9_bests(engine, adaptive: bool):
    """Best points of every sweep the fig9 experiment issues."""
    bests = []
    node = ivybridge_node()
    for name in list_cpu_workloads():
        wl = cpu_workload(name)
        for budget in CPU_BUDGETS_W:
            if adaptive:
                best = plan_cpu_sweep(
                    node.cpu, node.dram, wl, budget, step_w=FIG9_STEP_W,
                    engine=engine,
                ).best
            else:
                best = sweep_cpu_allocations(
                    node.cpu, node.dram, wl, budget, step_w=FIG9_STEP_W,
                    engine=engine,
                ).best
            bests.append(best)
    for card in (titan_xp_card(), titan_v_card()):
        caps = [c for c in GPU_CAPS_W if card.min_cap_w <= c <= card.max_cap_w]
        for name in list_gpu_workloads():
            wl = gpu_workload(name)
            for cap in caps:
                if adaptive:
                    best = plan_gpu_sweep(
                        card, wl, cap, freq_stride=1, engine=engine
                    ).best
                else:
                    best = sweep_gpu_allocations(
                        card, wl, cap, freq_stride=1, engine=engine
                    ).best
                bests.append(best)
    return bests


def _native_points_fig9() -> int:
    """Native grid size of the fig9 sweep load (what "full" executes)."""
    total = 0
    node = ivybridge_node()
    wl = cpu_workload("dgemm")
    for budget in CPU_BUDGETS_W:
        total += len(
            sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, step_w=FIG9_STEP_W,
                engine=SweepEngine(n_jobs=1, mode="full"),
            ).points
        ) * len(list_cpu_workloads())
    for card in (titan_xp_card(), titan_v_card()):
        caps = [c for c in GPU_CAPS_W if card.min_cap_w <= c <= card.max_cap_w]
        grid = len(
            sweep_gpu_allocations(
                card, gpu_workload("sgemm"), caps[0], freq_stride=1,
                engine=SweepEngine(n_jobs=1, mode="full"),
            ).points
        )
        total += grid * len(caps) * len(list_gpu_workloads())
    return total


def _timed_pass(fn, *args):
    """Wall-clock one pass with the cyclic GC parked.

    A cold pass is ~0.1 s and a gen-2 collection pause is milliseconds,
    so a collection landing inside one mode's pass but not the other's
    would swamp the cold-speedup ratios this benchmark gates on.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        out = fn(*args)
        return out, time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def _bench_config(runner, reps: int):
    """Best-of-``reps`` cold and warm wall-clock, full vs adaptive.

    Cold repeats each build a fresh engine, with the two modes
    *interleaved* rep-by-rep so slow drift (thermal, background load)
    cancels out of the ratio instead of biasing whichever mode ran
    last.  Warm repeats re-run the identical load on the engines the
    final cold rep populated (memo cache + planner replay).  The
    planner ``stats`` are snapshotted after that engine's single cold
    pass, so accounting is unpolluted by the warm reruns.
    """
    t = {key: float("inf") for key in
         ("full_cold", "adaptive_cold", "full_warm", "adaptive_warm")}
    full_engine = adaptive_engine = full_out = adaptive_out = None
    for _ in range(reps):
        full_engine = SweepEngine(n_jobs=1, mode="full")
        full_out, dt = _timed_pass(runner, full_engine, False)
        t["full_cold"] = min(t["full_cold"], dt)
        adaptive_engine = SweepEngine(n_jobs=1, mode="adaptive")
        adaptive_out, dt = _timed_pass(runner, adaptive_engine, True)
        t["adaptive_cold"] = min(t["adaptive_cold"], dt)
    stats = adaptive_engine.planner.stats
    for _ in range(reps):
        _, dt = _timed_pass(runner, full_engine, False)
        t["full_warm"] = min(t["full_warm"], dt)
        _, dt = _timed_pass(runner, adaptive_engine, True)
        t["adaptive_warm"] = min(t["adaptive_warm"], dt)
    return full_out, adaptive_out, stats, t


def _assert_curves_equal(full, adaptive) -> None:
    for f, a in zip(full, adaptive):
        assert np.array_equal(a.budgets_w, f.budgets_w)
        assert np.array_equal(a.perf_max, f.perf_max)
        assert np.array_equal(a.optimal_mem_w, f.optimal_mem_w)


def test_planner_bench(bench_quick, tmp_path):
    configs = {}
    wall_s = {}
    speedup = {}
    reps = 1 if bench_quick else 5
    runners = (
        ("fig2", _fig2_curves),
        ("fig6", _fig6_curves),
        ("fig9", _fig9_bests),
    )

    # full vs adaptive, cold and warm, answers locked equal in-run.
    planned_bests = None
    for label, runner in runners:
        full, planned, stats, t = _bench_config(runner, reps)
        t_full_cold, t_full_warm = t["full_cold"], t["full_warm"]
        t_cold, t_warm = t["adaptive_cold"], t["adaptive_warm"]
        if label == "fig9":
            planned_bests = planned
            if not bench_quick:
                for f, a in zip(full, planned):
                    assert a == f
            assert stats.native_points == _native_points_fig9()
        else:
            _assert_curves_equal(full, planned)
        wall_s[f"{label}_full_cold"] = t_full_cold
        wall_s[f"{label}_full_warm"] = t_full_warm
        wall_s[f"{label}_adaptive_cold"] = t_cold
        wall_s[f"{label}_adaptive_warm"] = t_warm
        speedup[f"{label}_cold"] = t_full_cold / t_cold
        speedup[f"{label}_warm"] = t_full_warm / t_warm
        configs[label] = {
            "native_points": stats.native_points,
            "executed_points": stats.executed_points,
            "reused_points": stats.reused_points,
            "fallbacks": stats.fallbacks,
            "point_ratio": stats.savings_ratio,
        }

    # fig9 against the persistent disk cache: cold populate, warm re-plan.
    # Warm passes are best-of-N on a fresh engine each time (every repeat
    # is served from disk, none from a prior repeat's memory tier) — the
    # pass is fast enough that timer noise would otherwise dominate.
    cold_dir = tmp_path / "cache"
    cold_engine = SweepEngine(n_jobs=1, mode="adaptive", cache_dir=cold_dir)
    cold_bests, t_cold = _timed_pass(_fig9_bests, cold_engine, True)
    cold_engine.flush()
    t_warm = float("inf")
    for _ in range(1 if bench_quick else 3):
        warm_engine = SweepEngine(n_jobs=1, mode="adaptive", cache_dir=cold_dir)
        warm_bests, t = _timed_pass(_fig9_bests, warm_engine, True)
        t_warm = min(t_warm, t)
        assert warm_bests == cold_bests == planned_bests
    disk_hits = warm_engine.stats.disk_hits
    disk_speedup = t_cold / t_warm
    wall_s["fig9_disk_cold"] = t_cold
    wall_s["fig9_disk_warm"] = t_warm

    executions_total = sum(c["native_points"] for c in configs.values())
    executions_saved = executions_total - sum(
        c["executed_points"] for c in configs.values()
    )

    lines = [
        "adaptive sweep planner — executed points and wall-clock vs the "
        "full sweep",
        "",
        f"{'config':8s} {'native':>8s} {'executed':>9s} {'reused':>7s} "
        f"{'fallbacks':>9s} {'ratio':>7s}",
    ]
    for label, c in configs.items():
        lines.append(
            f"{label:8s} {c['native_points']:8d} {c['executed_points']:9d} "
            f"{c['reused_points']:7d} {c['fallbacks']:9d} "
            f"{c['point_ratio']:6.2f}x"
        )
    lines += [
        "",
        f"wall clock, best of {reps} (full -> adaptive):",
        f"{'config':8s} {'full cold':>10s} {'adapt cold':>11s} "
        f"{'cold x':>7s} {'full warm':>10s} {'adapt warm':>11s} {'warm x':>7s}",
    ]
    for label, _ in runners:
        lines.append(
            f"{label:8s} {wall_s[f'{label}_full_cold']:9.3f}s "
            f"{wall_s[f'{label}_adaptive_cold']:10.3f}s "
            f"{speedup[f'{label}_cold']:6.2f}x "
            f"{wall_s[f'{label}_full_warm']:9.3f}s "
            f"{wall_s[f'{label}_adaptive_warm']:10.3f}s "
            f"{speedup[f'{label}_warm']:6.2f}x"
        )
    lines += [
        "",
        f"fig9 vs disk cache: cold {t_cold:.3f} s -> warm {t_warm:.3f} s "
        f"({disk_speedup:.1f}x, {disk_hits} disk hits)",
        "",
        "all adaptive answers asserted bit-identical to the full-sweep",
        "oracle in-run; with planner stages resolving through the batch",
        "kernel, adaptive must dominate the (equally vectorized) full",
        "sweep cold and warm on every config.",
    ]
    rendered = "\n".join(lines)
    write_text_report("planner", rendered)
    write_json_report(
        "planner",
        op="adaptive_planner",
        n_points=executions_total,
        wall_s=wall_s,
        speedup={**speedup, "fig9_disk_warm": disk_speedup},
        cache=warm_engine.stats,
        executions_total=executions_total,
        executions_saved=executions_saved,
        disk_cache_hits=disk_hits,
        configs=configs,
        min_point_ratio=MIN_POINT_RATIO,
        quick=bench_quick,
    )
    print()
    print(rendered)

    # Machine-independent claims: every config meets the 3x point floor
    # with zero accuracy loss (asserted above), and the warm disk pass
    # is served from the persistent cache rather than the model.
    for label, c in configs.items():
        assert c["point_ratio"] >= MIN_POINT_RATIO, (label, c)
    assert disk_hits > 0
    assert executions_saved >= executions_total * (1 - 1 / MIN_POINT_RATIO)
    if not bench_quick:
        assert disk_speedup >= MIN_DISK_WARM_SPEEDUP
        # The tentpole claim: adaptive strictly dominates the full sweep
        # on wall-clock, cold and warm, on every figure-scale config.
        for label, _ in runners:
            assert speedup[f"{label}_cold"] >= 1.0, (label, speedup)
            assert speedup[f"{label}_warm"] >= 1.0, (label, speedup)
