"""Shared machine-readable benchmark output.

Every ``bench_*.py`` renders a human-readable ``.txt`` report, but the
acceptance numbers (wall time, speedup, cache hit ratio) also need to be
consumable by scripts and CI without parsing prose.  This module is the
single place that writes those JSON artifacts so every benchmark emits
the same shape::

    {
      "op": "batch_cpu_sweep",
      "n_points": 1892,
      "wall_s": {"scalar_cold": 0.64, "batch_cold": 0.04, ...},
      "speedup": {"batch_cold": 17.7, ...},
      "cache": {"hits": 0, "misses": 1892, ...},
      ...extras
    }

``wall_s`` maps pass names to seconds; ``speedup`` maps pass names to
their speedup over the benchmark's declared scalar baseline.  ``cache``
is the engine's :class:`~repro.core.parallel.CacheStats` snapshot, or
``null`` for benchmarks that bypass the sweep engine.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.core.parallel import CacheStats

REPORTS_DIR = Path(__file__).parent / "reports"

__all__ = ["REPORTS_DIR", "timed", "write_json_report", "write_text_report"]


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once under a monotonic timer; return (result, seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def cache_dict(stats: CacheStats) -> dict[str, float | int]:
    """Flatten a CacheStats snapshot for JSON emission.

    ``hit_ratio`` reports the memory tier alone; lookups promoted from
    the persistent disk tier show up in ``disk_hits``/``disk_hit_ratio``
    so warm-process and warm-disk behaviour stay distinguishable.
    """
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "size": stats.size,
        "maxsize": stats.maxsize,
        "hit_ratio": stats.hit_ratio,
        "disk_hits": stats.disk_hits,
        "disk_hit_ratio": stats.disk_hit_ratio,
    }


def write_json_report(
    name: str,
    *,
    op: str,
    n_points: int,
    wall_s: dict[str, float],
    speedup: dict[str, float] | None = None,
    cache: CacheStats | None = None,
    executions_total: int | None = None,
    executions_saved: int | None = None,
    disk_cache_hits: int | None = None,
    **extras: Any,
) -> Path:
    """Write ``benchmarks/reports/<name>.json`` and return its path.

    ``executions_total``/``executions_saved`` report model-point
    accounting for planner-aware benchmarks (native grid size vs points
    the adaptive planner did not execute); ``disk_cache_hits`` counts
    lookups served by the persistent cross-process cache.  All three are
    omitted from the payload when ``None`` so pre-planner reports keep
    their shape.
    """
    REPORTS_DIR.mkdir(exist_ok=True)
    payload: dict[str, Any] = {
        "op": op,
        "n_points": n_points,
        "wall_s": {k: round(v, 6) for k, v in wall_s.items()},
        "speedup": (
            None if speedup is None else {k: round(v, 3) for k, v in speedup.items()}
        ),
        "cache": None if cache is None else cache_dict(cache),
    }
    if executions_total is not None:
        payload["executions_total"] = executions_total
    if executions_saved is not None:
        payload["executions_saved"] = executions_saved
    if disk_cache_hits is not None:
        payload["disk_cache_hits"] = disk_cache_hits
    payload.update(extras)
    path = REPORTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_text_report(name: str, rendered: str) -> Path:
    """Write ``benchmarks/reports/<name>.txt`` and return its path."""
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{name}.txt"
    path.write_text(rendered + "\n")
    return path
