"""Fleet-scale simulation throughput: 1,000 nodes, 100k jobs, one engine.

Drives a seeded synthetic Poisson trace through the event-driven
:class:`~repro.sched.fleet.FleetSimulator` at paper-vision scale
(Sections 5.1/8: node-level COORD as the foundation of a cluster-wide
power scheduler).  The global bound is set well below the fleet's
aggregate demand so the interesting machinery actually engages: held
admissions (missed-budget points), periodic water-filling re-splits, and
grant re-timing.

Two passes over the identical trace share one engine:

* **cold** — every (profile, workload, lattice row) model execution is a
  miss; allocation rounds resolve through freshly-prepared batched
  subgrid executors;
* **warm** — the same simulation replayed: the quantized-grant lattice
  memoizes almost perfectly, so the pass measures the pure event-core
  overhead.

Determinism is asserted the strong way — the warm replay must reproduce
the cold run's ``FleetStats`` exactly.  The committed report
(``benchmarks/reports/fleet.json``) carries the headline numbers
(throughput, makespan, missed-budget count) and is pinned by
``tests/test_report_schema.py``.

``--bench-quick`` shrinks the fleet and trace (CI smoke); the committed
artifact comes from the full-scale run.
"""

from __future__ import annotations

from repro.core.parallel import SweepEngine
from repro.sched import FleetSimulator
from repro.sched.traces import poisson_trace

from _harness import timed, write_json_report, write_text_report

SEED = 2016


def _simulate(trace, n_nodes: int, bound_w: float, engine: SweepEngine):
    sim = FleetSimulator(
        trace,
        n_nodes=n_nodes,
        global_bound_w=bound_w,
        resplit_interval_s=30.0,
        engine=engine,
    )
    return sim.run()


def test_fleet_bench(bench_quick):
    n_nodes = 128 if bench_quick else 1000
    n_jobs = 5_000 if bench_quick else 100_000
    # Offered load well past what the bound can serve (~33 jobs/s at 60 W
    # per node): admissions go power-blocked, re-splits move real grants.
    rate_per_s = 12.0 if bench_quick else 48.0
    bound_w = 60.0 * n_nodes

    trace, gen_s = timed(
        lambda: poisson_trace(n_jobs=n_jobs, rate_per_s=rate_per_s, seed=SEED)
    )
    engine = SweepEngine()
    cold, cold_s = timed(lambda: _simulate(trace, n_nodes, bound_w, engine))
    warm, warm_s = timed(lambda: _simulate(trace, n_nodes, bound_w, engine))

    # The simulation is a pure function of (trace, shape, bound): the warm
    # replay must be bit-identical, cache state notwithstanding.
    assert warm == cold
    assert cold.n_completed + cold.n_rejected == n_jobs
    assert cold.peak_charged_w <= bound_w + 1e-6
    # The pressure machinery actually engaged: power-blocked admission
    # points and re-timed grants both occurred.
    assert cold.n_missed_budget > 0
    assert cold.n_resplits > 0
    # The quantized lattice memoizes: distinct model executions stay
    # bounded by the lattice size (a few dozen rows per (profile,
    # workload) pair), not the job count.
    assert cold.n_kernel_passes > 0
    cache = engine.cache.stats
    assert 0 < cache.misses < 1_000
    assert cache.hits > 10 * cache.misses

    events_per_s = cold.n_events / cold_s
    lines = [
        "fleet-scale event-driven simulation (seeded Poisson trace)",
        f"({n_nodes} nodes under {bound_w / 1000.0:.0f} kW, {n_jobs} jobs at "
        f"{rate_per_s:g} jobs/s, re-split every 30 s, seed {SEED})",
        "",
        f"trace generation:  {gen_s:8.3f} s",
        f"cold simulation:   {cold_s:8.3f} s   "
        f"({events_per_s:,.0f} events/s, {cold.n_kernel_passes} kernel passes)",
        f"warm replay:       {warm_s:8.3f} s   (bit-identical stats)",
        "",
        f"completed {cold.n_completed}, rejected {cold.n_rejected}, "
        f"makespan {cold.makespan_s:,.0f} s",
        f"throughput {cold.throughput_jobs_per_hour:,.0f} jobs/h, "
        f"mean wait {cold.mean_wait_s:.1f} s",
        f"power: peak {cold.peak_charged_w / 1000.0:.1f} kW charged, "
        f"{cold.n_missed_budget} missed-budget holds",
        f"re-splits: {cold.n_resplits} rounds re-timed {cold.n_retimed} grants",
        f"rounds: {cold.n_rounds} allocation rounds, "
        f"{cold.n_events} events dispatched",
        "",
        "note: grants live on an 8 W lattice per (profile, workload), so the",
        "allocation space collapses to a few dozen model points per pair —",
        "whole-fleet rounds resolve through batched subgrid passes and the",
        "warm replay re-executes almost nothing.",
    ]
    rendered = "\n".join(lines)
    write_text_report("fleet", rendered)
    write_json_report(
        "fleet",
        op="fleet_simulation",
        n_points=n_jobs,
        wall_s={"trace_gen": gen_s, "cold": cold_s, "warm": warm_s},
        speedup={"warm": cold_s / warm_s},
        cache=cache,
        fleet={
            "n_nodes": n_nodes,
            "global_bound_w": bound_w,
            "resplit_interval_s": 30.0,
            "rate_per_s": rate_per_s,
            "seed": SEED,
        },
        throughput_jobs_per_hour=round(cold.throughput_jobs_per_hour, 1),
        makespan_s=round(cold.makespan_s, 3),
        mean_wait_s=round(cold.mean_wait_s, 3),
        n_completed=cold.n_completed,
        n_rejected=cold.n_rejected,
        n_missed_budget=cold.n_missed_budget,
        n_resplits=cold.n_resplits,
        n_retimed=cold.n_retimed,
        n_kernel_passes=cold.n_kernel_passes,
        n_events=cold.n_events,
        events_per_s=round(events_per_s, 1),
        peak_charged_w=round(cold.peak_charged_w, 3),
        quick=bench_quick,
    )
    print()
    print(rendered)
