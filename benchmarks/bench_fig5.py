"""Figure 5: balanced compute/memory interaction at the optimum (208 W)."""


def test_fig5(regenerate):
    report = regenerate("fig5")
    for wl in ("dgemm", "stream"):
        data = report.data[wl]
        points = data["points"]
        best_mem = data["optimal_mem_w"]
        best_pt = min(points, key=lambda bp: abs(bp.allocation.mem_w - best_mem))

        # At the optimum both utilizations are high (balance).
        assert best_pt.compute_utilization > 0.75
        assert best_pt.mem_utilization > 0.75

        # Away from the optimum, the utilization product degrades: one
        # domain's paid-for capacity sits idle.
        extremes = [points[0], points[-1]]
        best_product = best_pt.compute_utilization * best_pt.mem_utilization
        assert any(
            bp.compute_utilization * bp.mem_utilization < best_product - 0.05
            for bp in extremes
        )
