"""Vectorized batch kernel: scalar-vs-batch wall clock at fig9 scale.

Runs the Figure-9-scale CPU grid (every registered CPU workload at four
budgets, 4 W steps — 1892 allocation points) three ways in a single cold
process:

* **scalar cold** — the oracle configuration: ``batch=False``,
  ``n_jobs=1``, a cache too small to ever hit;
* **batch cold** — the default vectorized path, empty cache, whole
  grids resolved per NumPy call;
* **batch warm** — the same engine re-running the identical grid,
  served from the memo cache the batch pass filled point-by-point.

The headline acceptance number is the cold batch speedup over cold
scalar; the JSON report (``benchmarks/reports/batch.json``) is what the
repo cites in ``docs/modeling.md``.  The in-run assertion is only that
batch is *not slower* than scalar — absolute multipliers vary with the
host, and CI smoke runners are deliberately not trusted for them.

``--bench-quick`` keeps the same grid but runs one timing repeat per
configuration and skips the point-by-point equivalence spot check
(which ``tests/test_batch_equivalence.py`` covers exhaustively anyway).
"""

from __future__ import annotations

import time

from repro.core.parallel import SweepEngine
from repro.core.sweep import sweep_cpu_allocations
from repro.hardware.platforms import ivybridge_node
from repro.workloads import cpu_workload, list_cpu_workloads

from _harness import timed, write_json_report, write_text_report

BUDGETS_W = (144.0, 176.0, 208.0, 240.0)
STEP_W = 4.0


def _run_grid(node, workloads, engine) -> tuple[float, int, list]:
    """Sweep every (workload, budget) pair; return (seconds, points, sweeps)."""
    sweeps = []
    points = 0
    start = time.perf_counter()
    for wl in workloads:
        for budget in BUDGETS_W:
            sweep = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, step_w=STEP_W, engine=engine
            )
            points += len(sweep.points)
            sweeps.append(sweep)
    return time.perf_counter() - start, points, sweeps


def test_batch_kernel_bench(bench_quick):
    node = ivybridge_node()
    workloads = [cpu_workload(name) for name in list_cpu_workloads()]
    repeats = 1 if bench_quick else 3

    scalar = SweepEngine(n_jobs=1, cache_size=1, batch=False)
    t_scalar, n_points, scalar_sweeps = _run_grid(node, workloads, scalar)

    # Best-of-N for the batch passes: they are fast enough that timer
    # noise would otherwise dominate the reported multiplier.
    t_cold = float("inf")
    batch_sweeps = []
    for _ in range(repeats):
        batch = SweepEngine(n_jobs=1, batch=True)
        t, _, batch_sweeps = _run_grid(node, workloads, batch)
        t_cold = min(t_cold, t)
    t_warm, _, _ = _run_grid(node, workloads, batch)
    stats = batch.stats

    if not bench_quick:
        # Spot equivalence on the last cold pass — the exhaustive field-by-
        # field lock lives in tests/test_batch_equivalence.py.
        for s_sweep, b_sweep in zip(scalar_sweeps, batch_sweeps):
            assert s_sweep.points == b_sweep.points

    speedup_cold = t_scalar / t_cold
    speedup_warm = t_scalar / t_warm

    lines = [
        "vectorized batch kernel — fig9-scale CPU grid "
        f"({len(workloads)} workloads x {len(BUDGETS_W)} budgets, "
        f"step {STEP_W:g} W, {n_points} points/pass)",
        "",
        f"scalar cold (batch=False):     {t_scalar:8.3f} s",
        f"batch cold (default path):     {t_cold:8.3f} s   "
        f"speedup {speedup_cold:5.2f}x",
        f"batch warm (cache reuse):      {t_warm:8.3f} s   "
        f"speedup {speedup_warm:5.2f}x",
        "",
        f"cache: hits={stats.hits} misses={stats.misses} "
        f"evictions={stats.evictions} size={stats.size}/{stats.maxsize}",
        f"cache hit ratio: {stats.hit_ratio:.1%}",
        "",
        "note: batch cold resolves whole allocation grids per NumPy call",
        "in one process — no pool, no pickling — and still fills the memo",
        "cache point-by-point, so warm passes are identical to the scalar",
        "engine's.",
    ]
    rendered = "\n".join(lines)
    write_text_report("batch", rendered)
    write_json_report(
        "batch",
        op="batch_cpu_sweep",
        n_points=n_points,
        wall_s={
            "scalar_cold": t_scalar,
            "batch_cold": t_cold,
            "batch_warm": t_warm,
        },
        speedup={"batch_cold": speedup_cold, "batch_warm": speedup_warm},
        cache=stats,
        grid={
            "workloads": len(workloads),
            "budgets_w": list(BUDGETS_W),
            "step_w": STEP_W,
        },
        quick=bench_quick,
    )
    print()
    print(rendered)

    # Machine-independent claims only: the batch path must not lose to
    # scalar, and its cache bookkeeping must match the scalar engine's
    # (cold pass == all misses, warm pass == all hits).
    assert speedup_cold >= 1.0
    assert stats.misses == n_points
    assert stats.hits == n_points
    assert t_warm < t_scalar
